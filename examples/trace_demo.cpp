// Trace demo: run all three parallel pointer-based joins on a reduced
// workload with a TraceRecorder attached, and write one Chrome trace-event
// JSON file per algorithm.
//
// View a trace:
//   1. ./build/examples/trace_demo
//   2. open https://ui.perfetto.dev (or chrome://tracing) and load
//      nested-loops.trace.json
//   3. each "process" track is one disk; inside it, thread 1 is the Rproc
//      and thread 2 is the Sproc. Pass/phase spans nest above the instant
//      "fault" ticks; barrier-wait spans show where synchronization stalls.
//
// Tracing never charges simulated time, so the elapsed times printed here
// are identical to an untraced run (obs_integration_test asserts this).
#include <cstdio>

#include "mmjoin/mmjoin.h"

int main() {
  using namespace mmjoin;

  const sim::MachineConfig machine = sim::MachineConfig::SequentSymmetry1996();

  // A reduced workload (1/8 of the paper's) keeps the trace files small
  // enough to load comfortably while preserving the phase structure.
  rel::RelationConfig relation;
  relation.r_objects = 12800;
  relation.s_objects = 12800;

  join::JoinParams params;
  params.m_rproc_bytes = static_cast<uint64_t>(
      0.10 * relation.r_objects * sizeof(rel::RObject));
  params.m_sproc_bytes = params.m_rproc_bytes;

  struct Entry {
    const char* file;
    StatusOr<join::JoinRunResult> (*run)(sim::SimEnv*, const rel::Workload&,
                                         const join::JoinParams&);
  };
  const Entry entries[] = {
      {"nested-loops.trace.json", join::RunNestedLoops},
      {"sort-merge.trace.json", join::RunSortMerge},
      {"grace.trace.json", join::RunGrace},
  };

  std::printf("%-24s %10s %9s %8s\n", "trace", "elapsed_s", "faults",
              "events");
  for (const Entry& e : entries) {
    sim::SimEnv env(machine);
    obs::TraceRecorder trace;
    env.set_trace(&trace);

    auto workload = rel::BuildWorkload(&env, relation);
    if (!workload.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   workload.status().ToString().c_str());
      return 1;
    }
    auto result = e.run(&env, *workload, params);
    if (!result.ok() || !result->verified) {
      std::fprintf(stderr, "%s: run failed or unverified\n", e.file);
      return 1;
    }

    // Self-check: the export must parse as JSON and the fault events must
    // account for every fault the run reported.
    auto parsed = obs::JsonParse(trace.ToJson());
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: export is not valid JSON: %s\n", e.file,
                   parsed.status().ToString().c_str());
      return 1;
    }
    if (trace.CountEvents("fault") != result->faults) {
      std::fprintf(stderr, "%s: trace has %llu fault events, run reports %llu\n",
                   e.file,
                   static_cast<unsigned long long>(trace.CountEvents("fault")),
                   static_cast<unsigned long long>(result->faults));
      return 1;
    }

    Status written = trace.WriteFile(e.file);
    if (!written.ok()) {
      std::fprintf(stderr, "%s: %s\n", e.file, written.ToString().c_str());
      return 1;
    }
    std::printf("%-24s %10.2f %9llu %8llu\n", e.file,
                result->elapsed_ms / 1000.0,
                static_cast<unsigned long long>(result->faults),
                static_cast<unsigned long long>(trace.size()));
  }
  std::printf(
      "\nLoad any of these files at https://ui.perfetto.dev "
      "(pid = disk, tid 1 = Rproc, tid 2 = Sproc).\n");
  return 0;
}
