// mmjoin_client: command-line client for a running mmjoind.
//
//   mmjoin_client [--socket=PATH] register NAME R_OBJECTS S_OBJECTS
//       PARTITIONS [THETA] [SEED]
//   mmjoin_client [--socket=PATH] query NAME nested-loops|sort-merge|
//       grace|hybrid-hash|index-nl|mpsm|auto
//       [--priority=low|normal|high] [--trace]
//   mmjoin_client [--socket=PATH] plan NAME q1|q4|q6
//       [--priority=low|normal|high] [--trace]
//   mmjoin_client [--socket=PATH] list | stats | ping | shutdown
//   mmjoin_client [--socket=PATH] unregister NAME
//
// One request per invocation; the response prints human-readable. Exit
// status: 0 on a success response, 1 on an error response or transport
// failure, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mmjoin/mmjoin.h"
#include "util/cli.h"

namespace {

using namespace mmjoin;

constexpr char kUsage[] =
    "usage: mmjoin_client [--socket=PATH] COMMAND [args]\n"
    "  register NAME R S PARTITIONS [THETA] [SEED]  build + keep resident\n"
    "  query NAME ALGORITHM [--priority=low|normal|high] [--trace]\n"
    "      ALGORITHM: nested-loops | sort-merge | grace | hybrid-hash |\n"
    "                 index-nl | mpsm | auto (adaptive planner picks;\n"
    "                 the result echoes the chosen driver)\n"
    "  plan NAME PLAN [--priority=low|normal|high] [--trace]\n"
    "      PLAN: q1 | q4 | q6 (built-in TPC-H-style plans)\n"
    "  persist NAME [MSYNC]  seal as a durable store (none|async|sync)\n"
    "  load NAME          reattach a persisted store (checksums verified)\n"
    "  unregister NAME    drop a relation (and its store, if durable)\n"
    "  list               registered relations\n"
    "  stats              aggregate service counters\n"
    "  ping               liveness probe\n"
    "  shutdown           ask the daemon to drain and exit\n"
    "  --socket=PATH      daemon socket      [/tmp/mmjoind.sock]\n";

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int PrintResponse(const svc::Response& resp) {
  switch (resp.op) {
    case svc::ResponseOp::kError:
      std::fprintf(stderr, "error (%s): %s\n",
                   svc::ErrorCodeName(resp.error), resp.message.c_str());
      if (resp.retry_after_ms > 0) {
        std::fprintf(stderr, "retry after %llu ms\n",
                     static_cast<unsigned long long>(resp.retry_after_ms));
      }
      return 1;
    case svc::ResponseOp::kWelcome:
      std::printf("welcome, protocol v%u\n", resp.version);
      return 0;
    case svc::ResponseOp::kPong:
      std::printf("pong\n");
      return 0;
    case svc::ResponseOp::kDraining:
      std::printf("draining\n");
      return 0;
    case svc::ResponseOp::kRegistered:
      std::printf("registered %s (%llu resident bytes)\n", resp.name.c_str(),
                  static_cast<unsigned long long>(resp.resident_bytes));
      return 0;
    case svc::ResponseOp::kUnregistered:
      std::printf("unregistered %s\n", resp.name.c_str());
      return 0;
    case svc::ResponseOp::kPersisted:
      std::printf("persisted %s (%llu resident bytes)\n", resp.name.c_str(),
                  static_cast<unsigned long long>(resp.resident_bytes));
      return 0;
    case svc::ResponseOp::kLoaded:
      std::printf("loaded %s (%llu resident bytes)\n", resp.name.c_str(),
                  static_cast<unsigned long long>(resp.resident_bytes));
      return 0;
    case svc::ResponseOp::kResult:
      std::printf("result: algorithm=%s%s count=%llu checksum=0x%016llx "
                  "verified=%s exec=%.2fms queue=%.2fms threads=%u\n",
                  join::AlgorithmName(resp.algorithm),
                  resp.planner_auto ? " (planner pick)" : "",
                  static_cast<unsigned long long>(resp.count),
                  static_cast<unsigned long long>(resp.checksum),
                  resp.verified ? "yes" : "NO", resp.exec_ms, resp.queue_ms,
                  resp.threads);
      return resp.verified ? 0 : 1;
    case svc::ResponseOp::kPlanResult:
      std::printf("plan %s: rows=%llu checksum=0x%016llx verified=%s "
                  "scanned=%llu filtered=%llu joined=%llu "
                  "exec=%.2fms queue=%.2fms threads=%u\n",
                  resp.plan.c_str(),
                  static_cast<unsigned long long>(resp.count),
                  static_cast<unsigned long long>(resp.checksum),
                  resp.verified ? "yes" : "NO",
                  static_cast<unsigned long long>(resp.rows_scanned),
                  static_cast<unsigned long long>(resp.rows_filtered),
                  static_cast<unsigned long long>(resp.rows_joined),
                  resp.exec_ms, resp.queue_ms, resp.threads);
      for (const svc::PlanGroupEntry& g : resp.groups) {
        std::printf("  group 0x%016llx:",
                    static_cast<unsigned long long>(g.key));
        for (uint64_t a : g.aggs) {
          std::printf(" %llu", static_cast<unsigned long long>(a));
        }
        std::printf("\n");
      }
      return resp.verified ? 0 : 1;
    case svc::ResponseOp::kRelations:
      for (const svc::RelationInfo& r : resp.relations) {
        std::printf("%-16s |R|=%llu |S|=%llu D=%u theta=%.2f seed=%llu "
                    "resident=%llu pins=%u%s\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.r_objects),
                    static_cast<unsigned long long>(r.s_objects),
                    r.partitions, r.zipf_theta,
                    static_cast<unsigned long long>(r.seed),
                    static_cast<unsigned long long>(r.resident_bytes),
                    r.pins, r.durable ? " durable" : "");
      }
      if (resp.relations.empty()) std::printf("(no relations)\n");
      return 0;
    case svc::ResponseOp::kStats:
      for (const svc::StatEntry& e : resp.stats) {
        std::printf("%-28s %llu\n", e.name.c_str(),
                    static_cast<unsigned long long>(e.value));
      }
      return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/mmjoind.sock";
  svc::Request req;
  std::vector<std::string> positional;
  for (int a = 1; a < argc; ++a) {
    std::string v;
    if (ParseFlag(argv[a], "--socket", &v)) {
      socket_path = v;
    } else if (ParseFlag(argv[a], "--priority", &v)) {
      if (v == "low") {
        req.priority = exec::QueryPriority::kLow;
      } else if (v == "normal") {
        req.priority = exec::QueryPriority::kNormal;
      } else if (v == "high") {
        req.priority = exec::QueryPriority::kHigh;
      } else {
        cli::BadFlagValue("mmjoin_client", argv[a], kUsage);
      }
    } else if (std::strcmp(argv[a], "--trace") == 0) {
      req.trace = true;
    } else if (cli::IsFlagLike(argv[a])) {
      cli::UnknownFlag("mmjoin_client", argv[a], kUsage);
    } else {
      positional.push_back(argv[a]);
    }
  }
  if (positional.empty()) cli::UnknownFlag("mmjoin_client", "", kUsage);
  const std::string& command = positional[0];
  auto need = [&](size_t n) {
    if (positional.size() != 1 + n) {
      cli::UnknownFlag("mmjoin_client", command, kUsage);
    }
  };
  if (command == "register") {
    if (positional.size() < 5 || positional.size() > 7) {
      cli::UnknownFlag("mmjoin_client", command, kUsage);
    }
    req.op = svc::RequestOp::kRegister;
    req.name = positional[1];
    req.r_objects = std::strtoull(positional[2].c_str(), nullptr, 10);
    req.s_objects = std::strtoull(positional[3].c_str(), nullptr, 10);
    req.partitions =
        static_cast<uint32_t>(std::strtoul(positional[4].c_str(), nullptr,
                                           10));
    if (positional.size() > 5) {
      req.zipf_theta = std::strtod(positional[5].c_str(), nullptr);
    }
    if (positional.size() > 6) {
      req.seed = std::strtoull(positional[6].c_str(), nullptr, 10);
    }
    if (req.r_objects == 0 || req.s_objects == 0 || req.partitions == 0) {
      cli::BadFlagValue("mmjoin_client", "register sizes", kUsage);
    }
  } else if (command == "query") {
    if (positional.size() != 3) {
      cli::UnknownFlag("mmjoin_client", command, kUsage);
    }
    req.op = svc::RequestOp::kQuery;
    req.name = positional[1];
    const std::string& algo = positional[2];
    if (algo == "nested-loops") {
      req.algorithm = join::Algorithm::kNestedLoops;
    } else if (algo == "sort-merge") {
      req.algorithm = join::Algorithm::kSortMerge;
    } else if (algo == "grace") {
      req.algorithm = join::Algorithm::kGrace;
    } else if (algo == "hybrid-hash") {
      req.algorithm = join::Algorithm::kHybridHash;
    } else if (algo == "index-nl") {
      req.algorithm = join::Algorithm::kIndexNestedLoops;
    } else if (algo == "mpsm") {
      req.algorithm = join::Algorithm::kMpsm;
    } else if (algo == "auto") {
      req.algorithm_auto = true;
    } else {
      cli::BadFlagValue("mmjoin_client", algo, kUsage);
    }
  } else if (command == "plan") {
    if (positional.size() != 3) {
      cli::UnknownFlag("mmjoin_client", command, kUsage);
    }
    req.op = svc::RequestOp::kRunPlan;
    req.name = positional[1];
    req.plan = positional[2];
  } else if (command == "persist") {
    if (positional.size() < 2 || positional.size() > 3) {
      cli::UnknownFlag("mmjoin_client", command, kUsage);
    }
    req.op = svc::RequestOp::kPersist;
    req.name = positional[1];
    if (positional.size() > 2) req.msync = positional[2];
  } else if (command == "load") {
    need(1);
    req.op = svc::RequestOp::kLoad;
    req.name = positional[1];
  } else if (command == "unregister") {
    need(1);
    req.op = svc::RequestOp::kUnregister;
    req.name = positional[1];
  } else if (command == "list") {
    need(0);
    req.op = svc::RequestOp::kList;
  } else if (command == "stats") {
    need(0);
    req.op = svc::RequestOp::kStats;
  } else if (command == "ping") {
    need(0);
    req.op = svc::RequestOp::kPing;
  } else if (command == "shutdown") {
    need(0);
    req.op = svc::RequestOp::kShutdown;
  } else {
    cli::UnknownFlag("mmjoin_client", command, kUsage);
  }

  svc::Client client;
  Status st = client.Connect(socket_path);
  if (st.ok()) st = client.Handshake();
  if (!st.ok()) {
    std::fprintf(stderr, "mmjoin_client: %s\n", st.ToString().c_str());
    return 1;
  }
  auto resp = client.Call(req);
  if (!resp.ok()) {
    std::fprintf(stderr, "mmjoin_client: %s\n",
                 resp.status().ToString().c_str());
    return 1;
  }
  return PrintResponse(*resp);
}
