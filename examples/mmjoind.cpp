// mmjoind: the long-lived join daemon. Registers named relations once
// (resident mapped segments), serves concurrent join queries over a
// unix-domain socket on ONE shared morsel-scheduler pool, and drains
// gracefully on SIGTERM/SIGINT or a client `shutdown` request.
//
//   ./build/examples/mmjoind --socket=/tmp/mmjoind.sock --workers=4
//       --dir=/tmp/mmjoind-segments --artifacts=/tmp/mmjoind-artifacts
//
// docs/OPERATIONS.md walks through running it end to end;
// docs/PROTOCOL.md specifies the wire protocol; docs/PARAMETERS.md has
// the knob table.
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mmjoin/mmjoin.h"
#include "util/cli.h"

namespace {

using namespace mmjoin;

constexpr char kUsage[] =
    "usage: mmjoind [flags]\n"
    "  --socket=PATH        unix socket to listen on   [/tmp/mmjoind.sock]\n"
    "  --dir=PATH           segment root directory     [/tmp/mmjoind_<pid>]\n"
    "  --workers=N          shared-pool worker threads [4]\n"
    "  --max-inflight=N     queries executing at once  [4]\n"
    "  --mem-budget=BYTES   admission memory budget, 0=unlimited  [0]\n"
    "  --queue-limit=N      admission queue depth      [16]\n"
    "  --drain-timeout=SEC  wait for in-flight work on shutdown   [30]\n"
    "  --artifacts=DIR      per-query metrics/trace files         [off]\n"
    "  --store=DIR          durable store root: warm-load every persisted\n"
    "                       store found there at startup (implies --dir)\n"
    "  --msync=POLICY       default persist msync: none|async|sync [none]\n"
    "  --calibration=PATH   adaptive-planner calibration file backing\n"
    "                       \"algorithm\":\"auto\" queries; learned\n"
    "                       corrections persist there across restarts [off]\n";

std::atomic<bool> g_signal{false};

void OnSignal(int) { g_signal.store(true, std::memory_order_release); }

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  svc::ServerOptions options;
  std::string dir;
  for (int a = 1; a < argc; ++a) {
    std::string v;
    if (ParseFlag(argv[a], "--socket", &v)) {
      options.socket_path = v;
    } else if (ParseFlag(argv[a], "--dir", &v)) {
      dir = v;
    } else if (ParseFlag(argv[a], "--workers", &v)) {
      options.workers =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
      if (options.workers == 0) cli::BadFlagValue("mmjoind", argv[a], kUsage);
    } else if (ParseFlag(argv[a], "--max-inflight", &v)) {
      options.admission.max_inflight =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
      if (options.admission.max_inflight == 0) {
        cli::BadFlagValue("mmjoind", argv[a], kUsage);
      }
    } else if (ParseFlag(argv[a], "--mem-budget", &v)) {
      options.admission.mem_budget_bytes =
          std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[a], "--queue-limit", &v)) {
      options.admission.queue_limit =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[a], "--drain-timeout", &v)) {
      options.drain_timeout_s = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[a], "--artifacts", &v)) {
      options.artifacts_dir = v;
    } else if (ParseFlag(argv[a], "--store", &v)) {
      dir = v;
      options.load_store = true;
    } else if (ParseFlag(argv[a], "--msync", &v)) {
      StatusOr<mm::MsyncPolicy> parsed = mm::ParseMsyncPolicy(v);
      if (!parsed.ok()) cli::BadFlagValue("mmjoind", argv[a], kUsage);
      options.msync = *parsed;
    } else if (ParseFlag(argv[a], "--calibration", &v)) {
      options.calibration_path = v;
    } else {
      cli::UnknownFlag("mmjoind", argv[a], kUsage);
    }
  }
  if (dir.empty()) dir = "/tmp/mmjoind_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  if (!options.artifacts_dir.empty()) {
    ::mkdir(options.artifacts_dir.c_str(), 0755);
  }

  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  mm::SegmentManager manager(dir);
  svc::Server server(&manager, options);
  const Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "mmjoind: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("mmjoind: listening on %s (workers=%u max-inflight=%u "
              "mem-budget=%llu queue-limit=%u)\n",
              server.options().socket_path.c_str(), server.options().workers,
              server.options().admission.max_inflight,
              static_cast<unsigned long long>(
                  server.options().admission.mem_budget_bytes),
              server.options().admission.queue_limit);
  std::fflush(stdout);

  while (!g_signal.load(std::memory_order_acquire) &&
         !server.WaitShutdown(0.2)) {
  }

  std::printf("mmjoind: draining (timeout %.0fs)...\n",
              server.options().drain_timeout_s);
  std::fflush(stdout);
  const bool drained = server.Drain();
  server.Stop();
  std::printf("mmjoind: %s\n",
              drained ? "drained, bye" : "drain timed out, exiting anyway");
  return drained ? 0 : 1;
}
