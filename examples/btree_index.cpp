// Persistent index: a B+-tree in its own mapped segment indexing a mapped
// relation — two cooperating persistent structures, all references
// segment-relative, nothing swizzled. The index maps S object keys to
// packed S-pointers; lookups then dereference straight into the mapped
// relation, the same access path the pointer joins use.
//
// Run:  ./build/examples/btree_index [directory]
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "mmjoin/mmjoin.h"

int main(int argc, char** argv) {
  using namespace mmjoin;
  std::string dir = argc > 1
                        ? argv[1]
                        : "/tmp/mmjoin_index_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  mm::SegmentManager mgr(dir);

  // A mapped relation: 64k components over 4 partitions.
  rel::RelationConfig relation;
  relation.r_objects = relation.s_objects = 65536;
  relation.num_partitions = 4;
  (void)mm::DeleteMmWorkload(&mgr, "idx", relation.num_partitions);
  if (mgr.Exists("sindex")) {
    if (!mgr.DeleteSegment("sindex").ok()) return 1;
  }
  auto workload = mm::BuildMmWorkload(&mgr, "idx", relation);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  // Build the index: S.key -> packed S-pointer.
  auto index_seg = mgr.CreateSegment("sindex", 64 << 20);
  if (!index_seg.ok()) {
    std::fprintf(stderr, "%s\n", index_seg.status().ToString().c_str());
    return 1;
  }
  auto tree = mm::BTree::Create(&*index_seg);
  if (!tree.ok()) return 1;
  for (uint32_t i = 0; i < relation.num_partitions; ++i) {
    const rel::SObject* objs = workload->SObjects(i);
    for (uint64_t k = 0; k < workload->s_count[i]; ++k) {
      if (auto st = tree->Insert(objs[k].key, rel::SPtr{i, k}.Pack());
          !st.ok()) {
        std::fprintf(stderr, "insert: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  std::printf("indexed %llu components, tree height %u\n",
              static_cast<unsigned long long>(tree->size()), tree->height());
  if (auto st = tree->Validate(); !st.ok()) {
    std::fprintf(stderr, "validate: %s\n", st.ToString().c_str());
    return 1;
  }

  // Point queries: key -> S-pointer -> mapped object, no hashing of S.
  int found = 0;
  for (uint64_t probe = 0; probe < 10; ++probe) {
    const uint32_t part = static_cast<uint32_t>(probe % 4);
    const uint64_t local = probe * 1117 % workload->s_count[part];
    const uint64_t key = rel::SKeyFor(part, local);
    auto packed = tree->Find(key);
    if (!packed.ok()) continue;
    const rel::SPtr sp = rel::SPtr::Unpack(*packed);
    const rel::SObject& s = workload->SObjects(sp.partition)[sp.index];
    if (s.key == key) ++found;
  }
  std::printf("point lookups resolved through the index: %d/10\n", found);

  // Range scan: the leaf chain gives ordered access without touching S.
  uint64_t scanned = tree->Scan(0, UINT64_MAX, [](uint64_t, uint64_t) {});
  std::printf("full index scan visited %llu entries\n",
              static_cast<unsigned long long>(scanned));

  // Cleanup.
  workload->r_segs.clear();
  workload->s_segs.clear();
  if (!index_seg->Close().ok()) return 1;
  (void)mm::DeleteMmWorkload(&mgr, "idx", relation.num_partitions);
  (void)mgr.DeleteSegment("sindex");
  if (argc <= 1) ::rmdir(dir.c_str());
  std::printf("segments deleted.\n");
  return found == 10 && scanned == 65536 ? 0 : 1;
}
