// Real memory-mapped parallel joins: the library running as an actual
// mmap(2) join engine on this machine — relations persisted in segments,
// one worker thread per partition, implicit I/O through the kernel, and
// wall-clock times. Contrast with examples/quickstart, which runs the same
// algorithms in the calibrated 1996 simulator.
//
// The parallel runs are traced and measured: the example writes a
// Chrome/Perfetto-loadable trace (real_mmap_join.trace.json — open in
// https://ui.perfetto.dev) and a metrics dump (real_mmap_join.metrics.json)
// with the same schema the simulated benches emit.
//
// Run:  ./build/examples/real_mmap_join [directory]
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "mmjoin/mmjoin.h"

int main(int argc, char** argv) {
  using namespace mmjoin;

  std::string dir = argc > 1
                        ? argv[1]
                        : "/tmp/mmjoin_real_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  mm::SegmentManager mgr(dir);

  rel::RelationConfig relation;
  relation.r_objects = relation.s_objects = 1 << 20;  // 1M x 128 B = 128 MB
  relation.num_partitions = 4;
  relation.zipf_theta = 0.2;

  std::printf("building %llu-object relations in %s ...\n",
              static_cast<unsigned long long>(relation.r_objects),
              dir.c_str());
  (void)mm::DeleteMmWorkload(&mgr, "demo", relation.num_partitions);
  auto workload = mm::BuildMmWorkload(&mgr, "demo", relation);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-14s %10s %10s %12s %10s\n", "algorithm", "mode",
              "wall_ms", "tuples", "verified");
  struct Entry {
    const char* name;
    StatusOr<mm::MmJoinResult> (*run)(const mm::MmWorkload&,
                                      const mm::MmJoinOptions&);
  };
  const Entry entries[] = {
      {"nested-loops", mm::MmNestedLoops},
      {"sort-merge", mm::MmSortMerge},
      {"grace", mm::MmGrace},
      {"hybrid-hash", mm::MmHybridHash},
  };
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  for (const Entry& e : entries) {
    for (bool parallel : {false, true}) {
      mm::MmJoinOptions options;
      options.parallel = parallel;
      if (parallel) options.trace = &trace;  // trace the parallel runs
      auto result = e.run(*workload, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", e.name,
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("%-14s %10s %10.1f %12llu %10s\n", e.name,
                  parallel ? "parallel" : "serial", result->wall_ms,
                  static_cast<unsigned long long>(result->output_count),
                  result->verified ? "yes" : "NO");
      if (parallel) result->ExportMetrics(&metrics);
    }
  }

  // Same artifacts the simulated benches produce: a Perfetto-loadable
  // trace and a metrics JSON, but from real threads and real wall time.
  if (auto st = trace.WriteFile("real_mmap_join.trace.json"); !st.ok()) {
    std::fprintf(stderr, "trace: %s\n", st.ToString().c_str());
  }
  if (auto st = metrics.WriteFile("real_mmap_join.metrics.json"); !st.ok()) {
    std::fprintf(stderr, "metrics: %s\n", st.ToString().c_str());
  }
  std::printf("\nwrote real_mmap_join.trace.json (load in ui.perfetto.dev)\n"
              "wrote real_mmap_join.metrics.json\n");

  // Clean up: drop the mappings, then delete the segment files.
  workload->r_segs.clear();
  workload->s_segs.clear();
  if (auto st = mm::DeleteMmWorkload(&mgr, "demo", relation.num_partitions);
      !st.ok()) {
    std::fprintf(stderr, "cleanup: %s\n", st.ToString().c_str());
    return 1;
  }
  if (argc <= 1) ::rmdir(dir.c_str());
  std::printf("\nsegments deleted; directory clean.\n");
  return 0;
}
