#!/usr/bin/env bash
# Bench smoke: a Release build of the figure benches plus the real-backend
# join bench at SMALL scale, each under a hard timeout, with every
# `*.metrics.json` dump validated by the strict JSON parser and merged
# into one BENCH_ci.json artifact (tools/metrics_validate). This is a
# does-the-pipeline-run-and-verify gate first; the only timing assertion
# is a coarse big-regression tripwire: when the repo carries a committed
# BENCH_baseline.json, the real_backend_join dump's fastest join
# (join.elapsed_ms histogram min, best-of-3 via MMJOIN_KERNEL_REPS) must
# not exceed the baseline's by more than BENCH_SMOKE_TOLERANCE percent
# (default 50 — at smoke scale the fastest join is ~1 ms, and even its
# best-of-3 min jitters tens of percent on shared runners). Fine-grained
# speedup
# claims live in scripts/bench_kernels.sh, not here — CI runners are too
# noisy for tight timing gates. The planner_regret dump additionally
# trips on a worse regret geomean or mean model error vs the baseline
# (the adaptive planner's closed loop regressing is a build break even
# when raw join times hold). Refresh the baseline by copying
# build-bench/bench-smoke/BENCH_ci.json over BENCH_baseline.json when a
# deliberate perf change moves the floor.
#
#   scripts/bench_smoke.sh [build_dir] [objects]
#
# Defaults: build-bench, 8192 objects per relation.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
OBJECTS="${2:-8192}"
PER_BENCH_TIMEOUT="${BENCH_SMOKE_TIMEOUT:-300}"
TOLERANCE="${BENCH_SMOKE_TOLERANCE:-50}"
BASELINE="$(pwd)/BENCH_baseline.json"

cmake -B "$BUILD_DIR" -S . -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target \
  fig5a_nested_loops fig5b_sort_merge fig5c_grace real_backend_join \
  service_load queries planner_regret metrics_validate

OUT_DIR="$BUILD_DIR/bench-smoke"
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"
cd "$OUT_DIR"

run() {
  echo "== $* (timeout ${PER_BENCH_TIMEOUT}s)"
  timeout "$PER_BENCH_TIMEOUT" "$@"
}

run "../bench/fig5a_nested_loops" "$OBJECTS"
run "../bench/fig5b_sort_merge" "$OBJECTS"
run "../bench/fig5c_grace" "$OBJECTS"
# Twice the objects for the real backend (it is wall-clock fast), D=8,
# Zipf theta 1.1: the static-vs-stealing table runs on a genuinely skewed
# workload and the same_join column asserts schedule-independence. The run
# includes the small-N mpsm-vs-sort-merge table (identity asserted
# unconditionally, timing not gated here — scripts/bench_mpsm.sh arms the
# gate at scale), so BENCH_ci.json carries the join.mpsm.* telemetry.
run env MMJOIN_KERNEL_REPS=3 "../bench/real_backend_join" "$((OBJECTS * 2))" 8 1.1
# 10 seconds of open-loop multi-query load through the mmjoind service
# stack (in-process server, real unix socket, 4 clients on the shared
# 4-worker pool). The identity check — every concurrent result
# byte-identical to the serial baseline — is unconditional inside the
# bench; the peak-concurrency assertion stays OFF here (smoke-scale
# queries are too fast to queue reliably) and is armed by
# scripts/bench_service.sh instead.
run "../bench/service_load" "$((OBJECTS / 2))" 10 4
# Small-N pass over the TPC-H-flavoured plans (push-based operator layer):
# every plan is oracle-checked and its schedule/kernel variants must be
# bit-identical inside the bench; the dump rides into BENCH_ci.json like
# the rest. The timing gate for plans lives in scripts/bench_queries.sh.
run "../bench/queries" "$OBJECTS" 4 1.1 1
# Small-N pass of the planner-regret sweep WITHOUT the regret gate
# (MMJOIN_PLANNER_ASSERT unset — shared runners are too noisy; the gate
# is armed at scale by scripts/bench_planner.sh). The auto-vs-explicit
# identity check is unconditional inside the bench, and the dump's
# planner telemetry (regret geomean, model error) rides into
# BENCH_ci.json where the baseline diff below trips on closed-loop
# regressions.
run "../bench/planner_regret" "$OBJECTS" 8 store_planner

# Every dump must parse (strict RFC 8259) and carry the bench shape; the
# merged artifact is what CI uploads. With a committed baseline present,
# the real-backend bench is additionally diffed against it (gross
# wall-clock regressions only; a bench missing from the baseline warns
# and passes).
if [ -f "$BASELINE" ]; then
  ../tools/metrics_validate --merge BENCH_ci.json \
    --baseline "$BASELINE" --tolerance "$TOLERANCE" \
    --bench real_backend_join ./*.metrics.json
  # Planner closed-loop trips: regret geomean and mean |model error| vs
  # the baseline (metrics_validate only arms these when both sides carry
  # the planner telemetry; the elapsed-min diff doubles as the planner
  # bench's gross wall-clock tripwire).
  ../tools/metrics_validate \
    --baseline "$BASELINE" --tolerance "$TOLERANCE" \
    --bench planner_regret ./planner_regret.metrics.json
else
  echo "bench-smoke: no BENCH_baseline.json — skipping regression diff"
  ../tools/metrics_validate --merge BENCH_ci.json ./*.metrics.json
fi
echo "bench-smoke: OK ($OUT_DIR/BENCH_ci.json)"
