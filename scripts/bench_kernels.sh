#!/usr/bin/env bash
# Kernel/paging acceptance bench: a Release build of the real-backend join
# bench at LARGE scale, repeated best-of-N per kernel x paging combination,
# with the speedup gate armed — the run fails unless kernel=prefetch +
# paging=advise beats kernel=scalar + paging=none by MIN_SPEEDUP on at
# least two of the four algorithms (uniform or Zipf workload, whichever is
# better per algorithm). The identity check (every combination produces
# the identical verified count/checksum) is unconditional inside the bench.
#
#   scripts/bench_kernels.sh [build_dir] [objects] [out_json]
#
# Defaults: build-bench, 262144 objects per relation — the bench's own
# default large scale (32 MiB per side, well past any LLC, so every probe
# is a memory access). Larger N is fine too, but the probe pass becomes a
# smaller share of total wall clock as partitioning/sorting grow, so the
# end-to-end speedup the gate measures shrinks with N even though the
# kernel's per-probe win does not. Output artifact: BENCH_kernels.json at
# the repo root. Knobs via env: MMJOIN_KERNEL_REPS
# (default 3, best-of), MIN_SPEEDUP (default 1.25), BENCH_KERNELS_TIMEOUT
# (seconds, default 1800).
#
# This is the run that produces the committed BENCH_kernels.json artifact;
# CI's bench-smoke stays small-scale and does NOT arm the speedup gate
# (shared runners are too noisy for timing assertions — see
# scripts/bench_smoke.sh, which gates only on large wall-clock regressions
# against the committed baseline).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
OBJECTS="${2:-262144}"
OUT_JSON="${3:-BENCH_kernels.json}"
REPS="${MMJOIN_KERNEL_REPS:-3}"
MIN_SPEEDUP="${MIN_SPEEDUP:-1.25}"
TIMEOUT_S="${BENCH_KERNELS_TIMEOUT:-1800}"

cmake -B "$BUILD_DIR" -S . -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target real_backend_join metrics_validate

OUT_DIR="$BUILD_DIR/bench-kernels"
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

echo "== real_backend_join $OBJECTS objects, D=8, theta=1.1," \
     "reps=$REPS, gate >=${MIN_SPEEDUP}x on >=2/4 algorithms"
(
  cd "$OUT_DIR"
  MMJOIN_KERNEL_REPS="$REPS" MMJOIN_KERNEL_ASSERT="$MIN_SPEEDUP" \
    timeout "$TIMEOUT_S" ../bench/real_backend_join "$OBJECTS" 8 1.1 \
    | tee bench_kernels.log
  ../tools/metrics_validate --merge BENCH_kernels.json ./*.metrics.json
)
cp "$OUT_DIR/BENCH_kernels.json" "$OUT_JSON"
echo "bench-kernels: OK ($OUT_JSON)"
