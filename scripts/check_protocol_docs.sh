#!/usr/bin/env bash
# Protocol-docs coverage gate: every wire vocabulary string in
# src/service/protocol.h (the kRequestOps / kResponseOps / kErrorCodes
# tables — the single source of truth for the mmjoind protocol), every
# algorithm name in src/service/protocol.cc (kAlgorithmNames — the
# query.algorithm vocabulary), and every built-in plan name in
# src/exec/op/plan.h (kPlanNames — the run_plan vocabulary) must appear
# in docs/PROTOCOL.md, and the operator docs must exist at all.
# Wired into ctest as `check_protocol_docs` so adding a message without
# documenting it fails the tier-1 suite, not a reviewer's memory.
#
#   scripts/check_protocol_docs.sh [repo_root]
set -euo pipefail
cd "${1:-$(dirname "$0")/..}"

HEADER=src/service/protocol.h
SPEC=docs/PROTOCOL.md

fail=0
for doc in docs/PROTOCOL.md docs/OPERATIONS.md; do
  if [ ! -f "$doc" ]; then
    echo "check_protocol_docs: MISSING $doc"
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1

# Pull the quoted strings out of the three constexpr arrays. The arrays
# are `inline constexpr const char* kFoo[] = { "a", "b", ... };` — collect
# every "..." token between the opening brace and the closing `};`.
tokens() {
  awk -v table="$1" '
    $0 ~ "constexpr const char\\* " table "\\[\\]" { in_table = 1 }
    in_table {
      line = $0
      while (match(line, /"[^"]+"/)) {
        print substr(line, RSTART + 1, RLENGTH - 2)
        line = substr(line, RSTART + RLENGTH)
      }
      if ($0 ~ /};/) in_table = 0
    }
  ' "$2"
}

check_table() {
  local table=$1 header=$2
  local found_any=0
  while IFS= read -r token; do
    found_any=1
    # The spec marks wire strings as code spans; require the exact token
    # in backticks so prose coincidences ("internal", "list") cannot
    # satisfy the check.
    if ! grep -q "\`$token\`" "$SPEC"; then
      echo "check_protocol_docs: $table string '$token' not documented in $SPEC"
      missing=1
    fi
  done < <(tokens "$table" "$header")
  if [ "$found_any" -eq 0 ]; then
    echo "check_protocol_docs: could not extract $table from $header"
    missing=1
  fi
}

missing=0
for table in kRequestOps kResponseOps kErrorCodes; do
  check_table "$table" "$HEADER"
done
# The query op's algorithm vocabulary lives in the codec, not the header.
check_table kAlgorithmNames src/service/protocol.cc
# The run_plan op's plan-name vocabulary lives with the operator layer.
check_table kPlanNames src/exec/op/plan.h

if [ "$missing" -ne 0 ]; then
  exit 1
fi
echo "check_protocol_docs: OK (every wire string documented)"
