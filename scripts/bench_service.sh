#!/usr/bin/env bash
# Service-path acceptance bench: a Release build of bench/service_load at
# full scale with the concurrency assertion ARMED — the run fails unless
# the shared pool provably executed MMJOIN_SERVICE_ASSERT (default 4)
# queries at the same time (svc.inflight_peak), and every one of the
# thousands of concurrent results was byte-identical to the serial
# baseline (that check is unconditional inside the bench). Produces the
# committed BENCH_service.json artifact: qps, p50/p99 open-loop latency,
# and the full metrics dump.
#
# Regression gate: when a committed BENCH_service.json already exists at
# the repo root, the fresh run's `join.elapsed_ms` histogram minimum (the
# fastest query the service executed end to end) must not exceed the
# committed one's by more than TOLERANCE percent — the same
# tools/metrics_validate diff the smoke job applies to
# real_backend_join. Refresh the artifact by copying the new one over the
# old when a deliberate change moves the floor.
#
#   scripts/bench_service.sh [build_dir] [objects] [seconds] [clients]
#
# Defaults: build-bench, 65536 objects/side, 20 s, 8 clients. Env:
# MMJOIN_SERVICE_ASSERT (min concurrent, default 4), TOLERANCE (percent,
# default 50), BENCH_SERVICE_TIMEOUT (seconds, default 600).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
OBJECTS="${2:-65536}"
SECONDS_ARG="${3:-20}"
CLIENTS="${4:-8}"
ASSERT="${MMJOIN_SERVICE_ASSERT:-4}"
TOLERANCE="${TOLERANCE:-50}"
TIMEOUT_S="${BENCH_SERVICE_TIMEOUT:-600}"
COMMITTED="$(pwd)/BENCH_service.json"

cmake -B "$BUILD_DIR" -S . -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target service_load metrics_validate

OUT_DIR="$BUILD_DIR/bench-service"
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

echo "== service_load $OBJECTS objects, ${SECONDS_ARG}s, $CLIENTS clients," \
     "assert peak >= $ASSERT"
(
  cd "$OUT_DIR"
  MMJOIN_SERVICE_ASSERT="$ASSERT" \
    timeout "$TIMEOUT_S" ../bench/service_load \
    "$OBJECTS" "$SECONDS_ARG" "$CLIENTS" | tee bench_service.log
  if [ -f "$COMMITTED" ]; then
    ../tools/metrics_validate --merge BENCH_service.json \
      --baseline "$COMMITTED" --tolerance "$TOLERANCE" \
      --bench service_load ./*.metrics.json
  else
    echo "bench-service: no committed BENCH_service.json — skipping diff"
    ../tools/metrics_validate --merge BENCH_service.json ./*.metrics.json
  fi
)
cp "$OUT_DIR/BENCH_service.json" BENCH_service.json
echo "bench-service: OK (BENCH_service.json)"
