#!/usr/bin/env bash
# Crash-recovery gate for the durable relation store (the CI `persistence`
# job): build a store through mmjoin_cli --store, warm-reopen it, then use
# the MMJOIN_PERSIST_CRASH test hook to SIGKILL the process mid-persist
# and assert that (a) the torn store is REFUSED on reopen with a checksum
# error — never silently half-loaded — and (b) after removing the torn
# files a rebuild produces a store whose joins verify against the oracle
# again. Every join run here is oracle-checked by the binary itself
# ("verified yes" means count and checksum matched the workload's
# expectations), so "identical results" rides on the same seed-determined
# expectations before and after the crash.
#
#   scripts/check_persistence.sh [build_dir] [objects]
#
# Defaults: build, 8192 objects per relation, D=4. The store lives in a
# mktemp directory and is removed on exit.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OBJECTS="${2:-8192}"
CLI="$BUILD_DIR/examples/mmjoin_cli"

if [ ! -x "$CLI" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target mmjoin_cli
fi

STORE="$(mktemp -d)"
trap 'rm -rf "$STORE"' EXIT
run_cli() {
  "$CLI" --backend=real --algorithm=inl --r="$OBJECTS" --s="$OBJECTS" \
    --theta=1.1 --store="$STORE" "$@"
}

echo "== cold build + persist ($STORE)"
out="$(run_cli)"
echo "$out"
grep -q "store: persisted" <<<"$out"
grep -q "verified yes" <<<"$out"

echo "== warm reopen (no rebuild)"
out="$(run_cli)"
echo "$out"
grep -q "store: reopened" <<<"$out"
grep -q "verified yes" <<<"$out"

echo "== SIGKILL mid-persist (MMJOIN_PERSIST_CRASH=3)"
rm -rf "$STORE"; mkdir -p "$STORE"
set +e
MMJOIN_PERSIST_CRASH=3 run_cli >/dev/null 2>&1
rc=$?
set -e
if [ "$rc" -ne 137 ]; then
  echo "check_persistence: FAIL — expected SIGKILL exit 137, got $rc"
  exit 1
fi
echo "   killed as expected (exit $rc); store is torn"

echo "== torn store must be refused with a checksum error"
set +e
err="$(run_cli 2>&1 >/dev/null)"
rc=$?
set -e
echo "$err"
if [ "$rc" -ne 1 ]; then
  echo "check_persistence: FAIL — torn store accepted (exit $rc)"
  exit 1
fi
grep -qi "checksum" <<<"$err" || {
  echo "check_persistence: FAIL — refusal did not mention the checksum"
  exit 1
}

echo "== rebuild after removing the torn store"
rm -rf "$STORE"; mkdir -p "$STORE"
out="$(run_cli)"
echo "$out"
grep -q "store: persisted" <<<"$out"
grep -q "verified yes" <<<"$out"
out="$(run_cli)"
grep -q "store: reopened" <<<"$out"
grep -q "verified yes" <<<"$out"

echo "check_persistence: OK"
