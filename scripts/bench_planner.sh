#!/usr/bin/env bash
# Planner acceptance bench: a Release build of the planner-regret sweep
# with the regret gate armed. The bench measures all six drivers
# explicitly per grid cell (sizes x skew x |S|/|R| ratio x residency,
# best-of-reps), lets algorithm=auto pick with a freshly measured
# calibration, trains the EWMA loop to steady state, then scores every
# pick against the explicit ground truth:
#
#   regret(cell) = measured_ms[picked driver] / min_d measured_ms[d]
#
# Gate (always armed here): geomean regret <= 1.10 and no cell worse
# than 1.5x the best driver. The bench also asserts, unconditionally,
# that auto's output is bit-identical (count + checksum) to every
# explicit driver in every cell — the knob-invariance contract.
#
#   scripts/bench_planner.sh [build_dir] [objects] [out_json]
#
# Defaults: build-bench, 65536 objects per relation (the big size; the
# grid also sweeps objects/8), D=8 partitions. Output artifact:
# BENCH_planner.json at the repo root. Knobs via env:
# MMJOIN_PLANNER_REPS (default 2, best-of, interleaved),
# BENCH_PLANNER_TIMEOUT (seconds, default 3600), PARTITIONS (default 8).
#
# This is the run that produces the committed BENCH_planner.json
# artifact; CI's bench-smoke runs the same sweep at small scale WITHOUT
# the gate (shared runners are too noisy for timing assertions).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
OBJECTS="${2:-65536}"
OUT_JSON="${3:-BENCH_planner.json}"
PARTITIONS="${PARTITIONS:-8}"
REPS="${MMJOIN_PLANNER_REPS:-2}"
TIMEOUT_S="${BENCH_PLANNER_TIMEOUT:-3600}"

cmake -B "$BUILD_DIR" -S . -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target planner_regret metrics_validate

OUT_DIR="$BUILD_DIR/bench-planner"
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

echo "== planner_regret: $OBJECTS objects, D=$PARTITIONS, reps=$REPS," \
     "gate: geomean <= 1.10, max <= 1.5"
(
  cd "$OUT_DIR"
  mkdir -p store
  MMJOIN_PLANNER_ASSERT=1 MMJOIN_PLANNER_REPS="$REPS" \
    timeout "$TIMEOUT_S" ../bench/planner_regret "$OBJECTS" \
    "$PARTITIONS" store \
    | tee bench_planner.log
  ../tools/metrics_validate --merge BENCH_planner.json ./*.metrics.json
)
cp "$OUT_DIR/BENCH_planner.json" "$OUT_JSON"
echo "bench-planner: OK ($OUT_JSON)"
