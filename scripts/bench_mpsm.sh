#!/usr/bin/env bash
# MPSM acceptance bench: a Release build of the real-backend join bench,
# mpsm table only, at A/B scale (>= 16M objects per side by default) with
# the timing gate armed — on a multi-node NUMA host the run fails unless
# MPSM under numa=local is at least MIN_SPEEDUP x the sort-merge baseline
# on one of the two workloads (uniform, Zipf). On a single-node host the
# driver degenerates to its documented fallback (one band — there is no
# remote traffic for the placement to avoid): the bench prints the skip,
# the identity check (mpsm and sort-merge produce the identical verified
# count/checksum, asserted unconditionally inside the bench) still runs,
# and the committed artifact records the topology line explaining the
# missing speedup. Either way the artifact is honest about what the host
# could show.
#
#   scripts/bench_mpsm.sh [build_dir] [objects] [out_json]
#
# Defaults: build-bench, 16777216 objects per relation (2 GiB per side),
# D=8 partitions. Output artifact: BENCH_mpsm.json at the repo root.
# Knobs via env: MMJOIN_MPSM_REPS (default 2, best-of, interleaved),
# MMJOIN_MPSM_ASSERT (default 1.0, the gate's min speedup),
# BENCH_MPSM_TIMEOUT (seconds, default 3600), PARTITIONS (default 8).
#
# This is the run that produces the committed BENCH_mpsm.json artifact;
# CI's bench-smoke runs the same table at small scale WITHOUT the gate
# (shared runners are too noisy for timing assertions, and typically
# single-node anyway).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
OBJECTS="${2:-16777216}"
OUT_JSON="${3:-BENCH_mpsm.json}"
PARTITIONS="${PARTITIONS:-8}"
REPS="${MMJOIN_MPSM_REPS:-2}"
MIN_SPEEDUP="${MMJOIN_MPSM_ASSERT:-1.0}"
TIMEOUT_S="${BENCH_MPSM_TIMEOUT:-3600}"

cmake -B "$BUILD_DIR" -S . -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target real_backend_join metrics_validate

OUT_DIR="$BUILD_DIR/bench-mpsm"
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

echo "== real_backend_join mpsm table: $OBJECTS objects, D=$PARTITIONS," \
     "reps=$REPS, gate: mpsm(numa=local) >= ${MIN_SPEEDUP}x sort-merge" \
     "(multi-node hosts only; single-node records the fallback)"
(
  cd "$OUT_DIR"
  mkdir -p store
  MMJOIN_MPSM_ONLY=1 MMJOIN_MPSM_ASSERT="$MIN_SPEEDUP" \
    MMJOIN_MPSM_REPS="$REPS" \
    timeout "$TIMEOUT_S" ../bench/real_backend_join "$OBJECTS" \
    "$PARTITIONS" 1.1 store \
    | tee bench_mpsm.log
  ../tools/metrics_validate --merge BENCH_mpsm.json ./*.metrics.json
)
cp "$OUT_DIR/BENCH_mpsm.json" "$OUT_JSON"
echo "bench-mpsm: OK ($OUT_JSON)"
