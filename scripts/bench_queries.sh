#!/usr/bin/env bash
# Query-plan acceptance bench: a Release build of bench/queries at full
# scale. The bench itself is the correctness gate — every plan run is
# oracle-checked against the serial reference evaluator, and the
# static-schedule and scalar-kernel variants must reproduce the default
# run bit-for-bit (rows, groups, checksum) or the bench exits 1. The run
# produces the committed BENCH_queries.json artifact: per-plan TSV plus
# the merged metrics dump.
#
# Regression gate: when a committed BENCH_queries.json already exists at
# the repo root, the fresh run's `plan.elapsed_ms` histogram minimum (the
# fastest plan execution of the run) must not exceed the committed one's
# by more than TOLERANCE percent — the same tools/metrics_validate diff
# the other bench scripts apply, pointed at the plan histogram with
# --hist. Refresh the artifact by copying the new one over the old when a
# deliberate change moves the floor.
#
#   scripts/bench_queries.sh [build_dir] [objects] [reps]
#
# Defaults: build-bench, 131072 objects/side, best-of-3. Env: TOLERANCE
# (percent, default 50), BENCH_QUERIES_TIMEOUT (seconds, default 600).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
OBJECTS="${2:-131072}"
REPS="${3:-3}"
TOLERANCE="${TOLERANCE:-50}"
TIMEOUT_S="${BENCH_QUERIES_TIMEOUT:-600}"
COMMITTED="$(pwd)/BENCH_queries.json"

cmake -B "$BUILD_DIR" -S . -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target queries metrics_validate

OUT_DIR="$BUILD_DIR/bench-queries"
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

echo "== queries $OBJECTS objects, D=8, best-of-$REPS"
(
  cd "$OUT_DIR"
  timeout "$TIMEOUT_S" ../bench/queries "$OBJECTS" 8 1.1 "$REPS" \
    | tee bench_queries.log
  if [ -f "$COMMITTED" ]; then
    ../tools/metrics_validate --merge BENCH_queries.json \
      --baseline "$COMMITTED" --tolerance "$TOLERANCE" \
      --bench queries --hist plan.elapsed_ms ./*.metrics.json
  else
    echo "bench-queries: no committed BENCH_queries.json — skipping diff"
    ../tools/metrics_validate --merge BENCH_queries.json ./*.metrics.json
  fi
)
cp "$OUT_DIR/BENCH_queries.json" BENCH_queries.json
echo "bench-queries: OK (BENCH_queries.json)"
