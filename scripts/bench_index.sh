#!/usr/bin/env bash
# Index-join acceptance bench: a Release build of the real-backend join
# bench, index table only, with the warm-probe gate armed — the run fails
# unless the warm index probe (MmIndexProbe over the persisted store's
# B+-tree, no partition passes, no build) beats the best partitioning
# driver (min of Grace and hybrid hash) on at least one SELECTIVE
# configuration (|S| < |R|: most R tuples are never asked for, the
# index-join case from the paper). The table sweeps |R|/|S| ratio and
# skew (uniform + Zipf) and also reports the COLD index-nested-loops
# driver (partition passes + per-partition bulk build + probe) alongside
# — cold pays the build on every run and is reported, not gated. The
# identity check (every driver and the warm probe produce the identical
# verified count/checksum per cell) is unconditional inside the bench.
#
#   scripts/bench_index.sh [build_dir] [objects] [out_json]
#
# Defaults: build-bench, 65536 objects per relation, D=8 partitions.
# Output artifact: BENCH_index.json at the repo root. Knobs via env:
# MMJOIN_INDEX_REPS (default 3, best-of), BENCH_INDEX_TIMEOUT (seconds,
# default 1800), PARTITIONS (default 8).
#
# This is the run that produces the committed BENCH_index.json artifact;
# CI's bench-smoke runs the same table at small scale WITHOUT the gate
# (shared runners are too noisy for timing assertions).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
OBJECTS="${2:-65536}"
OUT_JSON="${3:-BENCH_index.json}"
PARTITIONS="${PARTITIONS:-8}"
REPS="${MMJOIN_INDEX_REPS:-3}"
TIMEOUT_S="${BENCH_INDEX_TIMEOUT:-1800}"

cmake -B "$BUILD_DIR" -S . -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target real_backend_join metrics_validate

OUT_DIR="$BUILD_DIR/bench-index"
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

echo "== real_backend_join index table: $OBJECTS objects, D=$PARTITIONS," \
     "reps=$REPS, gate: warm probe beats best partitioning driver on a" \
     "selective config"
(
  cd "$OUT_DIR"
  mkdir -p store
  MMJOIN_INDEX_ONLY=1 MMJOIN_INDEX_ASSERT=1 MMJOIN_INDEX_REPS="$REPS" \
    timeout "$TIMEOUT_S" ../bench/real_backend_join "$OBJECTS" \
    "$PARTITIONS" 1.1 store \
    | tee bench_index.log
  ../tools/metrics_validate --merge BENCH_index.json ./*.metrics.json
)
cp "$OUT_DIR/BENCH_index.json" "$OUT_JSON"
echo "bench-index: OK ($OUT_JSON)"
