#!/usr/bin/env bash
# Scatter/NUMA acceptance bench: a Release build of the real-backend join
# bench at LARGE scale, scatter table only, with the partition-pass speedup
# gate armed — the run fails unless the best of scatter=buffered|stream
# (numa=none) beats scatter=direct by MIN_SPEEDUP on the partition-pass
# wall-clock of sort-merge, Grace AND hybrid-hash (uniform or Zipf
# workload, whichever is better per algorithm; nested-loops is reported
# but not gated — its partition pass is probe-dominated). The identity
# check (every scatter x numa combination produces the identical verified
# count/checksum) is unconditional inside the bench, and reps are
# interleaved across combos so shared-box load drift cancels.
#
#   scripts/bench_scatter.sh [build_dir] [objects] [out_json]
#
# Defaults: build-bench, 4194304 objects per relation (512 MiB per side),
# D=128 partitions, k_buckets=256, scatter_tuples=32 — the shape where the
# write-combining win is measurable. Software write combining pays off in
# proportion to how many destination streams a pass keeps open and how
# many tuples each (morsel, destination) pair stages: at the bench's
# historical 262144 x D=8 shape a partition pass has only 7 open
# destinations and the staging layer is pure overhead, while at
# 4M x D=128 (+256 hash buckets in the Grace/hybrid repartition) the
# direct path's per-tuple random stores thrash write-allocate traffic
# that the buffered non-temporal flushes avoid. Output artifact:
# BENCH_scatter.json at the repo root. Knobs via env: MMJOIN_SCATTER_REPS
# (default 4, interleaved best-of), MIN_SPEEDUP (default 1.15),
# MMJOIN_SCATTER_TUPLES (default 32), MMJOIN_SCATTER_KBUCKETS (default
# 256), BENCH_SCATTER_TIMEOUT (seconds, default 3600), PARTITIONS
# (default 128).
#
# This is the run that produces the committed BENCH_scatter.json artifact;
# CI's bench-smoke stays small-scale and does NOT arm the speedup gate
# (shared runners are too noisy for timing assertions).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
OBJECTS="${2:-4194304}"
OUT_JSON="${3:-BENCH_scatter.json}"
PARTITIONS="${PARTITIONS:-128}"
REPS="${MMJOIN_SCATTER_REPS:-4}"
MIN_SPEEDUP="${MIN_SPEEDUP:-1.15}"
SC_TUPLES="${MMJOIN_SCATTER_TUPLES:-32}"
SC_KBUCKETS="${MMJOIN_SCATTER_KBUCKETS:-256}"
TIMEOUT_S="${BENCH_SCATTER_TIMEOUT:-3600}"

cmake -B "$BUILD_DIR" -S . -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target real_backend_join metrics_validate

OUT_DIR="$BUILD_DIR/bench-scatter"
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

echo "== real_backend_join $OBJECTS objects, D=$PARTITIONS, theta=1.1," \
     "k_buckets=$SC_KBUCKETS, scatter_tuples=$SC_TUPLES, reps=$REPS," \
     "gate >=${MIN_SPEEDUP}x on sort-merge+grace+hybrid partition passes"
(
  cd "$OUT_DIR"
  MMJOIN_SCATTER_ONLY=1 MMJOIN_SCATTER_REPS="$REPS" \
    MMJOIN_SCATTER_ASSERT="$MIN_SPEEDUP" \
    MMJOIN_SCATTER_TUPLES="$SC_TUPLES" \
    MMJOIN_SCATTER_KBUCKETS="$SC_KBUCKETS" \
    timeout "$TIMEOUT_S" ../bench/real_backend_join "$OBJECTS" "$PARTITIONS" \
    1.1 \
    | tee bench_scatter.log
  ../tools/metrics_validate --merge BENCH_scatter.json ./*.metrics.json
)
cp "$OUT_DIR/BENCH_scatter.json" "$OUT_JSON"
echo "bench-scatter: OK ($OUT_JSON)"
