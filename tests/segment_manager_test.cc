#include "mmap/segment_manager.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <string>

namespace mmjoin::mm {
namespace {

class SegmentManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "segmgr_" + std::to_string(::getpid()) +
           "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
  }

  std::string dir_;
};

TEST_F(SegmentManagerTest, CreateOpenDeleteLifecycle) {
  SegmentManager mgr(dir_);
  EXPECT_FALSE(mgr.Exists("data"));
  auto seg = mgr.CreateSegment("data", 1 << 20);
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  ASSERT_TRUE(seg->Close().ok());
  EXPECT_TRUE(mgr.Exists("data"));
  auto seg2 = mgr.OpenSegment("data");
  ASSERT_TRUE(seg2.ok());
  EXPECT_EQ(seg2->size(), 1u << 20);
  ASSERT_TRUE(seg2->Close().ok());
  ASSERT_TRUE(mgr.DeleteSegment("data").ok());
  EXPECT_FALSE(mgr.Exists("data"));
}

TEST_F(SegmentManagerTest, SamplesRecordAllThreePrimitives) {
  SegmentManager mgr(dir_);
  auto seg = mgr.CreateSegment("s", 1 << 20);
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(seg->Close().ok());
  auto seg2 = mgr.OpenSegment("s");
  ASSERT_TRUE(seg2.ok());
  ASSERT_TRUE(seg2->Close().ok());
  ASSERT_TRUE(mgr.DeleteSegment("s").ok());

  ASSERT_EQ(mgr.samples().size(), 3u);
  EXPECT_GT(mgr.samples()[0].new_map_s, 0.0);
  EXPECT_GT(mgr.samples()[1].open_map_s, 0.0);
  EXPECT_GT(mgr.samples()[2].delete_map_s, 0.0);
  // Sizes are carried through, including on delete.
  EXPECT_EQ(mgr.samples()[2].bytes, 1ull << 20);
  mgr.ClearSamples();
  EXPECT_TRUE(mgr.samples().empty());
}

TEST_F(SegmentManagerTest, OpenMissingFails) {
  SegmentManager mgr(dir_);
  EXPECT_EQ(mgr.OpenSegment("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.DeleteSegment("ghost").code(), StatusCode::kNotFound);
}

TEST_F(SegmentManagerTest, PathForIsStable) {
  SegmentManager mgr("/tmp/x");
  EXPECT_EQ(mgr.PathFor("abc"), "/tmp/x/abc.seg");
}

}  // namespace
}  // namespace mmjoin::mm
