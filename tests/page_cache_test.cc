#include "vm/page_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace mmjoin::vm {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest() : disks_(1, Geo()) {}

  static disk::DiskGeometry Geo() {
    disk::DiskGeometry g;
    g.num_blocks = 100000;
    return g;
  }

  disk::DiskArray disks_;
};

TEST_F(PageCacheTest, MissThenHit) {
  PageCache cache(4, PolicyKind::kLru, &disks_);
  const PageId id{1, 0};
  auto r1 = cache.Touch(id, 0, 10, /*write=*/false, /*need_disk_read=*/true);
  EXPECT_FALSE(r1.hit);
  EXPECT_TRUE(r1.faulted);
  EXPECT_GT(r1.ms, 0.0);
  auto r2 = cache.Touch(id, 0, 10, false, true);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(r2.ms, 0.0);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().faults, 1u);
}

TEST_F(PageCacheTest, ZeroFillCostsNoRead) {
  PageCache cache(4, PolicyKind::kLru, &disks_);
  auto r = cache.Touch(PageId{1, 0}, 0, 10, /*write=*/true,
                       /*need_disk_read=*/false);
  EXPECT_FALSE(r.faulted);
  EXPECT_EQ(r.ms, 0.0);
  EXPECT_EQ(cache.stats().zero_fills, 1u);
}

TEST_F(PageCacheTest, EvictionWritesBackDirtyPages) {
  PageCache cache(2, PolicyKind::kLru, &disks_);
  cache.Touch(PageId{1, 0}, 0, 0, /*write=*/true, false);
  cache.Touch(PageId{1, 1}, 0, 1, /*write=*/false, true);
  // Third page evicts page 0 (LRU), which is dirty.
  auto r = cache.Touch(PageId{1, 2}, 0, 2, false, true);
  EXPECT_TRUE(r.wrote_back);
  EXPECT_EQ(cache.stats().write_backs, 1u);
  EXPECT_EQ(cache.resident(), 2u);
}

TEST_F(PageCacheTest, CleanEvictionIsSilent) {
  PageCache cache(1, PolicyKind::kLru, &disks_);
  cache.Touch(PageId{1, 0}, 0, 0, false, true);
  auto r = cache.Touch(PageId{1, 1}, 0, 1, false, true);
  EXPECT_FALSE(r.wrote_back);
}

TEST_F(PageCacheTest, WriteBackListenerFires) {
  PageCache cache(1, PolicyKind::kLru, &disks_);
  std::vector<PageId> written;
  cache.set_write_back_listener(
      [&](const PageId& id) { written.push_back(id); });
  cache.Touch(PageId{3, 7}, 0, 0, /*write=*/true, false);
  cache.Touch(PageId{3, 8}, 0, 1, false, true);  // evicts dirty {3,7}
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0].segment, 3u);
  EXPECT_EQ(written[0].page, 7u);
}

TEST_F(PageCacheTest, FlushAllWritesDirtyOnly) {
  PageCache cache(4, PolicyKind::kLru, &disks_);
  cache.Touch(PageId{1, 0}, 0, 0, true, false);
  cache.Touch(PageId{1, 1}, 0, 1, false, true);
  cache.Touch(PageId{1, 2}, 0, 2, true, false);
  const double ms = cache.FlushAll();
  EXPECT_GE(ms, 0.0);
  EXPECT_EQ(cache.stats().write_backs, 2u);
  // Pages stay resident after flush.
  EXPECT_EQ(cache.resident(), 3u);
  // Second flush: nothing dirty.
  EXPECT_EQ(cache.FlushAll(), 0.0);
}

TEST_F(PageCacheTest, EvictSegmentSelective) {
  PageCache cache(8, PolicyKind::kLru, &disks_);
  cache.Touch(PageId{1, 0}, 0, 0, true, false);
  cache.Touch(PageId{2, 0}, 0, 10, true, false);
  cache.Touch(PageId{2, 1}, 0, 11, false, true);
  cache.EvictSegment(2, /*discard=*/false);
  EXPECT_TRUE(cache.IsResident(PageId{1, 0}));
  EXPECT_FALSE(cache.IsResident(PageId{2, 0}));
  EXPECT_FALSE(cache.IsResident(PageId{2, 1}));
  EXPECT_EQ(cache.stats().write_backs, 1u);  // only the dirty {2,0}
}

TEST_F(PageCacheTest, EvictSegmentDiscardSkipsWriteBack) {
  PageCache cache(8, PolicyKind::kLru, &disks_);
  cache.Touch(PageId{2, 0}, 0, 10, true, false);
  const double ms = cache.EvictSegment(2, /*discard=*/true);
  EXPECT_EQ(ms, 0.0);
  EXPECT_EQ(cache.stats().write_backs, 0u);
}

TEST_F(PageCacheTest, LruOrderGovernsEviction) {
  PageCache cache(3, PolicyKind::kLru, &disks_);
  cache.Touch(PageId{1, 0}, 0, 0, false, true);
  cache.Touch(PageId{1, 1}, 0, 1, false, true);
  cache.Touch(PageId{1, 2}, 0, 2, false, true);
  cache.Touch(PageId{1, 0}, 0, 0, false, true);  // refresh page 0
  cache.Touch(PageId{1, 3}, 0, 3, false, true);  // evicts page 1
  EXPECT_TRUE(cache.IsResident(PageId{1, 0}));
  EXPECT_FALSE(cache.IsResident(PageId{1, 1}));
}

TEST_F(PageCacheTest, ResizeShrinkEvicts) {
  PageCache cache(8, PolicyKind::kLru, &disks_);
  for (uint64_t p = 0; p < 8; ++p) {
    cache.Touch(PageId{1, p}, 0, p, true, false);
  }
  cache.Resize(3);
  EXPECT_EQ(cache.capacity(), 3u);
  EXPECT_EQ(cache.resident(), 3u);
  EXPECT_EQ(cache.stats().write_backs, 5u);
  // Cache still works after resize.
  auto r = cache.Touch(PageId{1, 100}, 0, 100, false, true);
  EXPECT_TRUE(r.faulted);
  EXPECT_EQ(cache.resident(), 3u);
}

TEST_F(PageCacheTest, ResizeGrowKeepsResidents) {
  PageCache cache(2, PolicyKind::kLru, &disks_);
  cache.Touch(PageId{1, 0}, 0, 0, false, true);
  cache.Touch(PageId{1, 1}, 0, 1, false, true);
  cache.Resize(6);
  EXPECT_TRUE(cache.IsResident(PageId{1, 0}));
  EXPECT_TRUE(cache.IsResident(PageId{1, 1}));
  for (uint64_t p = 2; p < 6; ++p) {
    cache.Touch(PageId{1, p}, 0, p, false, true);
  }
  EXPECT_EQ(cache.resident(), 6u);
}

TEST_F(PageCacheTest, WorkingSetWithinCapacityNeverRefaults) {
  PageCache cache(16, PolicyKind::kLru, &disks_);
  Rng rng(4);
  for (int round = 0; round < 50; ++round) {
    for (uint64_t p = 0; p < 16; ++p) {
      cache.Touch(PageId{1, p}, 0, p, false, true);
    }
  }
  EXPECT_EQ(cache.stats().faults, 16u);  // compulsory misses only
}

TEST_F(PageCacheTest, CyclicScanOverCapacityThrashesUnderLru) {
  // The classic LRU pathology: scanning N+1 pages with N frames misses
  // every time.
  PageCache cache(4, PolicyKind::kLru, &disks_);
  for (int round = 0; round < 10; ++round) {
    for (uint64_t p = 0; p < 5; ++p) {
      cache.Touch(PageId{1, p}, 0, p, false, true);
    }
  }
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().faults, 50u);
}

}  // namespace
}  // namespace mmjoin::vm
