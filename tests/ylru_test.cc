// Properties of the Mackert-Lohman LRU approximation, plus a differential
// check against the real LRU page cache.
#include "model/ylru.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "vm/page_cache.h"

namespace mmjoin::model {
namespace {

TEST(YlruTest, ZeroAccessesZeroFaults) {
  EXPECT_EQ(Ylru(1000, 100, 1000, 10, 0), 0.0);
}

TEST(YlruTest, NeverExceedsAccessCount) {
  for (double x : {1.0, 10.0, 100.0, 5000.0, 50000.0}) {
    EXPECT_LE(Ylru(25600, 800, 25600, 8, x), x);
  }
}

TEST(YlruTest, MonotoneInAccesses) {
  double prev = 0;
  for (double x = 100; x <= 30000; x += 500) {
    const double y = Ylru(25600, 800, 25600, 100, x);
    EXPECT_GE(y, prev - 1e-9);
    prev = y;
  }
}

TEST(YlruTest, MonotoneNonincreasingInBuffer) {
  double prev = 1e18;
  for (double b : {8.0, 32.0, 128.0, 400.0, 800.0, 1600.0}) {
    const double y = Ylru(25600, 800, 25600, b, 20000);
    EXPECT_LE(y, prev + 1e-9);
    prev = y;
  }
}

TEST(YlruTest, BigBufferGivesCompulsoryMissesOnly) {
  // Buffer larger than the relation: faults approach the distinct pages
  // touched (t * (1 - q^x) <= t).
  const double y = Ylru(25600, 800, 25600, 2000, 25600);
  EXPECT_LE(y, 800.0 + 1e-9);
  EXPECT_GT(y, 700.0);  // nearly every page gets touched
}

TEST(YlruTest, TinyBufferFaultsNearlyEveryAccessBeyondWarmup) {
  const double x = 20000;
  const double y = Ylru(25600, 800, 25600, 4, x);
  EXPECT_GT(y, 0.9 * x);
}

TEST(YlruTest, SteadyStateBranchContinuousAtN) {
  // The two branches must agree (approximately) where they meet.
  const double n_tuples = 10000, t = 500, i = 10000, b = 200;
  // Find n empirically: largest x where the first branch applies.
  double prev = 0;
  for (double x = 1; x < 5000; ++x) {
    const double y = Ylru(n_tuples, t, i, b, x);
    EXPECT_LE(y - prev, 1.0 + 1e-9);  // at most one fault per access
    prev = y;
  }
}

// Differential validation: the formula must approximate the real LRU cache
// within a modest relative error for uniform random accesses.
TEST(YlruDifferentialTest, ApproximatesRealLruCache) {
  const uint64_t pages = 400;
  const uint64_t objects = 12800;  // 32 per page
  for (uint64_t frames : {40ull, 100ull, 200ull}) {
    disk::DiskGeometry g;
    disk::DiskArray disks(1, g);
    vm::PageCache cache(frames, vm::PolicyKind::kLru, &disks);
    Rng rng(frames);
    const uint64_t accesses = 20000;
    for (uint64_t a = 0; a < accesses; ++a) {
      const uint64_t obj = rng.Uniform(objects);
      cache.Touch(vm::PageId{1, obj / 32}, 0, obj / 32, false, true);
    }
    const double predicted =
        Ylru(objects, pages, objects, frames, accesses);
    const double actual = static_cast<double>(cache.stats().faults);
    EXPECT_NEAR(predicted / actual, 1.0, 0.15)
        << "frames=" << frames << " predicted=" << predicted
        << " actual=" << actual;
  }
}

}  // namespace
}  // namespace mmjoin::model
