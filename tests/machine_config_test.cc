#include "sim/machine_config.h"

#include <gtest/gtest.h>

namespace mmjoin::sim {
namespace {

TEST(MachineConfigTest, PaperDefaults) {
  const MachineConfig mc = MachineConfig::SequentSymmetry1996();
  EXPECT_EQ(mc.page_size, 4096u);  // "all virtual memory I/O ... 4K blocks"
  EXPECT_EQ(mc.num_disks, 4u);     // "partitioned across 4 disks"
}

TEST(MachineConfigTest, MappingCostsLinearInSize) {
  const MachineConfig mc = MachineConfig::SequentSymmetry1996();
  const double a = mc.NewMapMs(1000);
  const double b = mc.NewMapMs(2000);
  const double c = mc.NewMapMs(3000);
  EXPECT_NEAR(c - b, b - a, 1e-9);
}

TEST(MachineConfigTest, NewCostsMoreThanOpenCostsMoreThanDelete) {
  // Fig 1(b): acquiring disk space > attaching > freeing.
  const MachineConfig mc = MachineConfig::SequentSymmetry1996();
  for (uint64_t blocks : {100ull, 1600ull, 12800ull}) {
    EXPECT_GT(mc.NewMapMs(blocks), mc.OpenMapMs(blocks));
    EXPECT_GT(mc.OpenMapMs(blocks), mc.DeleteMapMs(blocks));
  }
}

TEST(MachineConfigTest, Fig1bMagnitudes) {
  // newMap of a 12800-block file is ~12 s in the paper.
  const MachineConfig mc = MachineConfig::SequentSymmetry1996();
  EXPECT_GT(mc.NewMapMs(12800), 8000.0);
  EXPECT_LT(mc.NewMapMs(12800), 16000.0);
}

TEST(MachineConfigTest, MemoryTransferOrdering) {
  // Shared-memory transfers cross the bus twice; private-private is the
  // cheapest path.
  const MachineConfig mc = MachineConfig::SequentSymmetry1996();
  EXPECT_LT(mc.mt_pp_ms, mc.mt_ps_ms);
  EXPECT_LE(mc.mt_ps_ms, mc.mt_ss_ms);
  EXPECT_DOUBLE_EQ(mc.mt_ps_ms, mc.mt_sp_ms);  // symmetric copy directions
}

}  // namespace
}  // namespace mmjoin::sim
