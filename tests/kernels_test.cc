// The cache-conscious dereference kernels and the paging-policy layer:
// batched kernels are bit-identical to their scalar references, every
// kernel x paging x schedule x workers combination of the four real joins
// produces the identical verified count/checksum, and segment advice
// reports errors without ever affecting results.
#include "exec/kernels.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "mmap/mm_relation.h"
#include "mmap/mmap_join.h"
#include "mmap/segment.h"
#include "rel/relation.h"

namespace mmjoin::exec {
namespace {

// ---------------------------------------------------------------------------
// Kernel unit tests: pipelined == scalar, bit for bit.
// ---------------------------------------------------------------------------

/// Synthetic S partitions plus a ref stream covering them with repeats.
struct KernelFixture {
  std::vector<std::vector<rel::SObject>> parts;
  std::vector<const rel::SObject*> part_ptrs;
  std::vector<SRef> refs;
  std::vector<rel::RObject> objs;

  explicit KernelFixture(uint64_t n_refs, uint32_t n_parts = 3,
                         uint64_t part_objects = 257) {
    parts.resize(n_parts);
    for (uint32_t p = 0; p < n_parts; ++p) {
      parts[p].resize(part_objects);
      for (uint64_t k = 0; k < part_objects; ++k) {
        parts[p][k].id = k;
        parts[p][k].key = rel::SKeyFor(p, k);
      }
      part_ptrs.push_back(parts[p].data());
    }
    for (uint64_t k = 0; k < n_refs; ++k) {
      // Deterministic scatter with repeats — the kernels must not assume
      // distinct targets.
      const uint32_t p = static_cast<uint32_t>(rel::Mix64(k) % n_parts);
      const uint64_t idx = rel::Mix64(k * 31 + 7) % part_objects;
      const uint64_t sptr = rel::SPtr{p, idx}.Pack();
      refs.push_back(SRef{k, sptr});
      rel::RObject obj;
      obj.id = k;
      obj.sptr = sptr;
      objs.push_back(obj);
    }
  }
};

TEST(KernelsTest, ProbeRefsMatchesScalarAcrossDistances) {
  const KernelFixture f(10000);
  KernelTally scalar;
  ProbeRefsScalar(f.refs.data(), f.refs.size(), f.part_ptrs.data(), &scalar);
  EXPECT_EQ(scalar.count, f.refs.size());
  // 0 resolves to the default; oversized distances clamp.
  for (uint32_t distance : {0u, 1u, 7u, 32u, 256u, 100000u}) {
    KernelTally pipelined;
    ProbeRefs(f.refs.data(), f.refs.size(), f.part_ptrs.data(), distance,
              &pipelined);
    EXPECT_EQ(pipelined.count, scalar.count) << "distance=" << distance;
    EXPECT_EQ(pipelined.digest, scalar.digest) << "distance=" << distance;
    EXPECT_EQ(pipelined.requests, f.refs.size());
    EXPECT_EQ(pipelined.batches, 1u);
  }
}

TEST(KernelsTest, ProbeObjectsMatchesScalarAcrossDistances) {
  const KernelFixture f(10000);
  KernelTally scalar;
  ProbeObjectsScalar(f.objs.data(), f.objs.size(), f.part_ptrs.data(),
                     &scalar);
  EXPECT_EQ(scalar.count, f.objs.size());
  for (uint32_t distance : {0u, 1u, 7u, 32u, 256u, 100000u}) {
    KernelTally pipelined;
    ProbeObjects(f.objs.data(), f.objs.size(), f.part_ptrs.data(), distance,
                 &pipelined);
    EXPECT_EQ(pipelined.count, scalar.count) << "distance=" << distance;
    EXPECT_EQ(pipelined.digest, scalar.digest) << "distance=" << distance;
  }
}

TEST(KernelsTest, EmptyAndShorterThanDistanceBatches) {
  const KernelFixture f(5);
  KernelTally t;
  ProbeRefs(f.refs.data(), 0, f.part_ptrs.data(), 32, &t);
  EXPECT_EQ(t.count, 0u);
  EXPECT_EQ(t.digest, 0u);
  EXPECT_EQ(t.batches, 1u);
  // n < distance: the whole batch drains through the epilogue.
  KernelTally scalar, pipelined;
  ProbeRefsScalar(f.refs.data(), f.refs.size(), f.part_ptrs.data(), &scalar);
  ProbeRefs(f.refs.data(), f.refs.size(), f.part_ptrs.data(), 32, &pipelined);
  EXPECT_EQ(pipelined.count, scalar.count);
  EXPECT_EQ(pipelined.digest, scalar.digest);
  KernelTally o;
  ProbeObjects(f.objs.data(), 0, f.part_ptrs.data(), 32, &o);
  EXPECT_EQ(o.count, 0u);
}

TEST(KernelsTest, TalliesAccumulateAcrossBatches) {
  const KernelFixture f(1000);
  KernelTally t;
  ProbeRefs(f.refs.data(), 400, f.part_ptrs.data(), 16, &t);
  ProbeRefs(f.refs.data() + 400, 600, f.part_ptrs.data(), 16, &t);
  KernelTally whole;
  ProbeRefsScalar(f.refs.data(), 1000, f.part_ptrs.data(), &whole);
  EXPECT_EQ(t.count, whole.count);
  EXPECT_EQ(t.digest, whole.digest);
  EXPECT_EQ(t.requests, 1000u);
  EXPECT_EQ(t.batches, 2u);
}

// ---------------------------------------------------------------------------
// Identity across the real joins: every kernel x paging x schedule x
// workers combination must produce the same verified count/checksum.
// ---------------------------------------------------------------------------

class KernelJoinIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "kernels_" + std::to_string(::getpid()) +
           "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  mm::MmWorkload Build(double theta) {
    rel::RelationConfig rc;
    rc.r_objects = rc.s_objects = 8192;
    rc.num_partitions = 8;
    rc.zipf_theta = theta;
    auto w = mm::BuildMmWorkload(mgr_.get(), "w" + std::to_string(builds_++),
                                 rc);
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    return std::move(w).value();
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
  int builds_ = 0;
};

using MmJoinFn = StatusOr<mm::MmJoinResult> (*)(const mm::MmWorkload&,
                                                const mm::MmJoinOptions&);
constexpr MmJoinFn kJoins[] = {mm::MmNestedLoops, mm::MmSortMerge,
                               mm::MmGrace, mm::MmHybridHash};

TEST_F(KernelJoinIdentityTest, KernelScheduleWorkerMatrix) {
  for (double theta : {0.0, 1.1}) {
    const mm::MmWorkload w = Build(theta);
    for (MmJoinFn join : kJoins) {
      for (DerefKernel kernel : {DerefKernel::kScalar, DerefKernel::kPrefetch}) {
        for (Schedule schedule : {Schedule::kStatic, Schedule::kStealing}) {
          for (uint32_t workers : {1u, 2u, 8u}) {
            mm::MmJoinOptions opt;
            opt.kernel = kernel;
            opt.schedule = schedule;
            opt.max_threads = workers;
            opt.paging = PagingMode::kAdvise;
            auto r = join(w, opt);
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            // verified == matched the workload's expected count/checksum,
            // so every combination passing pins the identity.
            EXPECT_TRUE(r->verified)
                << "theta=" << theta << " kernel=" << KernelName(kernel)
                << " schedule=" << static_cast<int>(schedule)
                << " workers=" << workers;
            EXPECT_EQ(r->output_count, w.expected_output_count);
            EXPECT_EQ(r->output_checksum, w.expected_checksum);
            if (kernel == DerefKernel::kPrefetch) {
              EXPECT_GT(r->run.kernel_batches, 0u);
              EXPECT_GT(r->run.kernel_requests, 0u);
            } else {
              EXPECT_EQ(r->run.kernel_batches, 0u);
            }
          }
        }
      }
    }
  }
}

TEST_F(KernelJoinIdentityTest, PagingModeSweep) {
  const mm::MmWorkload w = Build(1.1);
  for (MmJoinFn join : kJoins) {
    for (PagingMode paging :
         {PagingMode::kNone, PagingMode::kAdvise, PagingMode::kPopulate}) {
      mm::MmJoinOptions opt;
      opt.paging = paging;
      auto r = join(w, opt);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r->verified) << "paging=" << PagingModeName(paging);
      EXPECT_EQ(r->output_count, w.expected_output_count);
      EXPECT_EQ(r->output_checksum, w.expected_checksum);
      if (paging == PagingMode::kNone) {
        EXPECT_EQ(r->run.paging_advise_calls, 0u);
      } else if (paging == PagingMode::kAdvise) {
        EXPECT_GT(r->run.paging_advise_calls, 0u);
        EXPECT_TRUE(r->paging_status.ok())
            << r->paging_status.ToString();
      }
    }
  }
}

TEST_F(KernelJoinIdentityTest, PrefetchDistanceDoesNotChangeResults) {
  const mm::MmWorkload w = Build(0.0);
  for (uint32_t distance : {1u, 4u, 256u}) {
    mm::MmJoinOptions opt;
    opt.prefetch_distance = distance;
    auto r = mm::MmNestedLoops(w, opt);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->verified) << "distance=" << distance;
  }
}

// ---------------------------------------------------------------------------
// Segment-advice error paths.
// ---------------------------------------------------------------------------

TEST(SegmentAdviseTest, UnmappedBaseIsInvalidArgument) {
  const Status st =
      mm::AdviseMappedRange(nullptr, 4096, 0, 4096, AccessIntent::kRandom);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SegmentAdviseTest, OutOfRangeIsInvalidArgument) {
  alignas(4096) static char buf[4096];
  EXPECT_EQ(mm::AdviseMappedRange(buf, 4096, 4096, 1,
                                  AccessIntent::kSequential)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mm::AdviseMappedRange(buf, 4096, 0, 8192,
                                  AccessIntent::kSequential)
                .code(),
            StatusCode::kInvalidArgument);
  // Zero length is trivially fine.
  uint64_t advised = 42;
  EXPECT_TRUE(mm::AdviseMappedRange(buf, 4096, 100, 0,
                                    AccessIntent::kSequential, &advised)
                  .ok());
  EXPECT_EQ(advised, 0u);
}

class SegmentAdviseFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "advise_" + std::to_string(::getpid()) +
           "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
  }
  std::string dir_;
};

TEST_F(SegmentAdviseFileTest, AdviseOnRealSegmentReportsBytes) {
  auto seg = mm::Segment::Create(dir_ + "/s", 1 << 20);
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  uint64_t advised = 0;
  ASSERT_TRUE(seg->Advise(AccessIntent::kSequential, &advised).ok());
  EXPECT_GE(advised, uint64_t{1} << 20);
  advised = 0;
  ASSERT_TRUE(
      seg->AdviseRange(8192, 4096, AccessIntent::kWillNeed, &advised).ok());
  EXPECT_GT(advised, 0u);
  // A sub-page kDontNeed narrows inward to nothing rather than discarding a
  // boundary page a neighbor may still need.
  advised = 42;
  ASSERT_TRUE(
      seg->AdviseRange(100, 64, AccessIntent::kDontNeed, &advised).ok());
  EXPECT_EQ(advised, 0u);
  ASSERT_TRUE(seg->Close().ok());
  // Advice on a closed (unmapped) segment is an error, not a crash.
  EXPECT_EQ(seg->Advise(AccessIntent::kRandom).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(mm::Segment::Delete(dir_ + "/s").ok());
}

}  // namespace
}  // namespace mmjoin::exec
