// End-to-end checks of the observability layer against the simulator: the
// trace accounts for every fault the run reports, metrics export matches
// the result struct, and attaching a recorder does not perturb the
// simulated numbers (traced and untraced runs are bit-identical).
#include <cstdint>

#include "gtest/gtest.h"
#include "join/nested_loops.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rel/generator.h"
#include "sim/sim_env.h"

namespace mmjoin {
namespace {

rel::RelationConfig SmallRelation() {
  rel::RelationConfig rc;
  rc.r_objects = 4096;
  rc.s_objects = 4096;
  return rc;
}

join::JoinParams SmallParams(const rel::RelationConfig& rc) {
  join::JoinParams params;
  params.m_rproc_bytes =
      static_cast<uint64_t>(0.1 * rc.r_objects * sizeof(rel::RObject));
  params.m_sproc_bytes = params.m_rproc_bytes;
  return params;
}

join::JoinRunResult RunNestedLoopsSmall(obs::TraceRecorder* trace) {
  const sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  const rel::RelationConfig rc = SmallRelation();
  sim::SimEnv env(mc);
  if (trace) env.set_trace(trace);
  auto workload = rel::BuildWorkload(&env, rc);
  EXPECT_TRUE(workload.ok());
  auto result = join::RunNestedLoops(&env, *workload, SmallParams(rc));
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result->verified);
  return *result;
}

TEST(ObsIntegrationTest, TraceFaultCountMatchesRunResult) {
  obs::TraceRecorder trace;
  const join::JoinRunResult result = RunNestedLoopsSmall(&trace);
  ASSERT_GT(result.faults, 0u);
  EXPECT_EQ(trace.CountEvents("fault"), result.faults);
  EXPECT_EQ(trace.open_spans(), 0u);
}

TEST(ObsIntegrationTest, ExportedJsonFaultCountMatchesRunResult) {
  obs::TraceRecorder trace;
  const join::JoinRunResult result = RunNestedLoopsSmall(&trace);

  auto doc = obs::JsonParse(trace.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  uint64_t faults = 0;
  uint64_t thread_names = 0;
  for (const obs::JsonValue& e : events->items) {
    const obs::JsonValue* name = e.Find("name");
    if (!name || !name->is_string()) continue;
    if (name->str == "fault") ++faults;
    if (name->str == "thread_name") ++thread_names;
  }
  EXPECT_EQ(faults, result.faults);
  // One Rproc and one Sproc track per disk (D = 4 by default).
  EXPECT_EQ(thread_names, 8u);
}

TEST(ObsIntegrationTest, TracingDoesNotPerturbTheRun) {
  const join::JoinRunResult untraced = RunNestedLoopsSmall(nullptr);
  obs::TraceRecorder trace;
  const join::JoinRunResult traced = RunNestedLoopsSmall(&trace);

  // Bit-identical, not approximately equal.
  EXPECT_EQ(traced.elapsed_ms, untraced.elapsed_ms);
  EXPECT_EQ(traced.faults, untraced.faults);
  EXPECT_EQ(traced.write_backs, untraced.write_backs);
  EXPECT_EQ(traced.output_checksum, untraced.output_checksum);
  ASSERT_EQ(traced.passes.size(), untraced.passes.size());
  for (size_t i = 0; i < traced.passes.size(); ++i) {
    EXPECT_EQ(traced.passes[i].elapsed_ms, untraced.passes[i].elapsed_ms);
    EXPECT_EQ(traced.passes[i].faults, untraced.passes[i].faults);
  }
  EXPECT_GT(trace.size(), 0u);
}

TEST(ObsIntegrationTest, ExportMetricsMatchesRunResult) {
  const join::JoinRunResult result = RunNestedLoopsSmall(nullptr);
  obs::MetricsRegistry registry;
  result.ExportMetrics(&registry);

  EXPECT_EQ(registry.counter("join.runs").value(), 1u);
  EXPECT_EQ(registry.counter("join.faults").value(), result.faults);
  EXPECT_EQ(registry.counter("join.write_backs").value(), result.write_backs);
  EXPECT_EQ(registry.counter("join.output_objects").value(),
            result.output_count);
  EXPECT_EQ(registry.counter("join.unverified_runs").value(), 0u);
  EXPECT_EQ(registry.histogram("join.elapsed_ms").count(), 1u);
  EXPECT_DOUBLE_EQ(registry.histogram("join.elapsed_ms").sum(),
                   result.elapsed_ms);

  // Per-pass metrics exist for every pass mark.
  for (const auto& pass : result.passes) {
    EXPECT_EQ(registry.histogram("pass." + pass.label + ".ms").count(), 1u)
        << pass.label;
    EXPECT_EQ(registry.counter("pass." + pass.label + ".faults").value(),
              pass.faults)
        << pass.label;
  }

  // Rproc process stats roll up to the result's fault total minus the
  // Sproc-side faults; at minimum the counter must exist and be bounded.
  EXPECT_LE(registry.counter("rproc.faults").value(), result.faults);
}

}  // namespace
}  // namespace mmjoin
