// End-to-end correctness: every algorithm must produce exactly the
// reference join (same cardinality, same order-independent checksum) for
// every combination of relation size, disk count, skew and memory budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "join/grace.h"
#include "join/hybrid_hash.h"
#include "join/nested_loops.h"
#include "join/oracle.h"
#include "join/sort_merge.h"
#include "rel/generator.h"
#include "sim/sim_env.h"

namespace mmjoin {
namespace {

using join::Algorithm;
using join::JoinParams;
using join::JoinRunResult;

StatusOr<JoinRunResult> RunAlgorithm(Algorithm a, sim::SimEnv* env,
                                     const rel::Workload& w,
                                     const JoinParams& p) {
  switch (a) {
    case Algorithm::kNestedLoops:
      return join::RunNestedLoops(env, w, p);
    case Algorithm::kSortMerge:
      return join::RunSortMerge(env, w, p);
    case Algorithm::kGrace:
      return join::RunGrace(env, w, p);
    case Algorithm::kHybridHash:
      return join::RunHybridHash(env, w, p);
  }
  return Status::InvalidArgument("bad algorithm");
}

struct Case {
  Algorithm algorithm;
  uint64_t r_objects;
  uint64_t s_objects;
  uint32_t disks;
  double zipf_theta;
  uint64_t m_rproc_bytes;
};

class JoinCorrectnessTest : public ::testing::TestWithParam<Case> {};

TEST_P(JoinCorrectnessTest, MatchesOracle) {
  const Case c = GetParam();
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  mc.num_disks = c.disks;
  sim::SimEnv env(mc);

  rel::RelationConfig rc;
  rc.r_objects = c.r_objects;
  rc.s_objects = c.s_objects;
  rc.num_partitions = c.disks;
  rc.zipf_theta = c.zipf_theta;
  rc.seed = 7 + c.r_objects + c.disks;
  auto workload = rel::BuildWorkload(&env, rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  const join::OracleResult oracle = join::OracleJoin(&env, *workload);
  ASSERT_EQ(oracle.count, workload->expected_output_count);
  ASSERT_EQ(oracle.checksum, workload->expected_checksum);

  JoinParams params;
  params.m_rproc_bytes = c.m_rproc_bytes;
  params.m_sproc_bytes = c.m_rproc_bytes;
  auto result = RunAlgorithm(c.algorithm, &env, *workload, params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output_count, oracle.count);
  EXPECT_EQ(result->output_checksum, oracle.checksum);
  EXPECT_TRUE(result->verified);
  EXPECT_GT(result->elapsed_ms, 0.0);
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  const Algorithm algorithms[] = {Algorithm::kNestedLoops,
                                  Algorithm::kSortMerge, Algorithm::kGrace,
                                  Algorithm::kHybridHash};
  const uint64_t sizes[] = {256, 4096, 20000};
  const uint32_t disk_counts[] = {1, 2, 4};
  const double thetas[] = {0.0, 0.6};
  const uint64_t memories[] = {64ull << 10, 1ull << 20};
  for (Algorithm a : algorithms) {
    for (uint64_t n : sizes) {
      for (uint32_t d : disk_counts) {
        for (double theta : thetas) {
          for (uint64_t m : memories) {
            cases.push_back(Case{a, n, n, d, theta, m});
          }
        }
      }
    }
  }
  // Asymmetric relation sizes.
  cases.push_back(
      Case{Algorithm::kNestedLoops, 5000, 1000, 4, 0.0, 1ull << 20});
  cases.push_back(
      Case{Algorithm::kSortMerge, 5000, 1000, 4, 0.0, 1ull << 20});
  cases.push_back(Case{Algorithm::kGrace, 5000, 1000, 4, 0.0, 1ull << 20});
  cases.push_back(
      Case{Algorithm::kNestedLoops, 1000, 5000, 2, 0.0, 256ull << 10});
  cases.push_back(
      Case{Algorithm::kSortMerge, 1000, 5000, 2, 0.0, 256ull << 10});
  cases.push_back(Case{Algorithm::kGrace, 1000, 5000, 2, 0.0, 256ull << 10});
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = join::AlgorithmName(c.algorithm);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  name += "_r" + std::to_string(c.r_objects) + "_s" +
          std::to_string(c.s_objects) + "_d" + std::to_string(c.disks) +
          "_t" + std::to_string(static_cast<int>(c.zipf_theta * 10)) + "_m" +
          std::to_string(c.m_rproc_bytes >> 10) + "k";
  return name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinCorrectnessTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// Extremely small memory must still complete correctly (just slowly).
TEST(JoinCorrectnessEdge, TinyMemory) {
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  sim::SimEnv env(mc);
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 2048;
  rc.num_partitions = 4;
  auto w = rel::BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());
  JoinParams p;
  p.m_rproc_bytes = 4 * mc.page_size;  // four frames
  p.m_sproc_bytes = 4 * mc.page_size;
  for (auto a : {Algorithm::kNestedLoops, Algorithm::kSortMerge,
                 Algorithm::kGrace, Algorithm::kHybridHash}) {
    auto r = RunAlgorithm(a, &env, *w, p);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->verified) << join::AlgorithmName(a);
  }
}

// Explicit manual parameters (IRUN/NRUN, K/TSIZE) must also be honoured.
TEST(JoinCorrectnessEdge, ManualParameters) {
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  sim::SimEnv env(mc);
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 4096;
  rc.num_partitions = 4;
  auto w = rel::BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());

  JoinParams p;
  p.m_rproc_bytes = 512 << 10;
  p.irun = 100;
  p.nrun_abl = 3;
  p.nrun_last = 2;
  auto sm = join::RunSortMerge(&env, *w, p);
  ASSERT_TRUE(sm.ok());
  EXPECT_TRUE(sm->verified);
  EXPECT_EQ(sm->irun, 100u);
  EXPECT_GT(sm->npass, 1u);

  JoinParams pg;
  pg.m_rproc_bytes = 512 << 10;
  pg.k_buckets = 7;
  pg.tsize = 16;
  auto gr = join::RunGrace(&env, *w, pg);
  ASSERT_TRUE(gr.ok());
  EXPECT_TRUE(gr->verified);
  EXPECT_EQ(gr->k_buckets, 7u);
  EXPECT_EQ(gr->tsize, 16u);
}

// Phase synchronization must not change the output, only the clocks.
TEST(JoinCorrectnessEdge, PhaseSyncInvariance) {
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  sim::SimEnv env(mc);
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 4096;
  rc.num_partitions = 4;
  rc.zipf_theta = 0.5;
  auto w = rel::BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());

  for (auto a : {Algorithm::kNestedLoops, Algorithm::kSortMerge,
                 Algorithm::kGrace, Algorithm::kHybridHash}) {
    JoinParams on, off;
    on.phase_sync = true;
    off.phase_sync = false;
    auto r_on = RunAlgorithm(a, &env, *w, on);
    auto r_off = RunAlgorithm(a, &env, *w, off);
    ASSERT_TRUE(r_on.ok() && r_off.ok());
    EXPECT_EQ(r_on->output_checksum, r_off->output_checksum);
    EXPECT_TRUE(r_on->verified);
    EXPECT_TRUE(r_off->verified);
    // A barrier can only increase (or keep) the max clock.
    EXPECT_GE(r_on->elapsed_ms, r_off->elapsed_ms * 0.999);
  }
}

}  // namespace
}  // namespace mmjoin
