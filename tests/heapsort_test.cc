#include "heap/heapsort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace mmjoin {
namespace {

HeapLess ValueLess() {
  return [](uint64_t a, uint64_t b) { return a < b; };
}

TEST(FloydBuildHeapTest, ProducesValidHeap) {
  Rng rng(1);
  for (size_t n : {0u, 1u, 2u, 3u, 7u, 64u, 1000u}) {
    std::vector<uint64_t> v(n);
    for (auto& x : v) x = rng.Uniform(1000);
    FloydBuildHeap(&v, ValueLess(), nullptr);
    EXPECT_TRUE(IsMinHeap(v, ValueLess())) << "n=" << n;
  }
}

TEST(FloydBuildHeapTest, CountsCosts) {
  std::vector<uint64_t> v{5, 4, 3, 2, 1};
  HeapCost cost;
  FloydBuildHeap(&v, ValueLess(), &cost);
  EXPECT_GT(cost.compares, 0u);
  EXPECT_GT(cost.swaps, 0u);
}

TEST(FloydBuildHeapTest, LinearCompareCount) {
  // Floyd construction is O(n): compares per element bounded by a small
  // constant (the classic bound is < 2n; the paper models 1.77n).
  Rng rng(2);
  std::vector<uint64_t> v(10000);
  for (auto& x : v) x = rng.Next();
  HeapCost cost;
  FloydBuildHeap(&v, ValueLess(), &cost);
  EXPECT_LT(cost.compares, 2 * v.size() + 16);
}

class HeapSortParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HeapSortParamTest, SortsRandomInput) {
  const size_t n = GetParam();
  Rng rng(n + 17);
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = rng.Uniform(n * 3 + 1);
  std::vector<uint64_t> expected = v;
  std::sort(expected.begin(), expected.end());
  HeapSort(&v, ValueLess(), nullptr);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HeapSortParamTest,
                         ::testing::Values(0, 1, 2, 3, 5, 16, 100, 1024,
                                           10000));

TEST(HeapSortTest, SortsSortedAndReversedInput) {
  std::vector<uint64_t> asc{1, 2, 3, 4, 5, 6, 7};
  std::vector<uint64_t> desc{7, 6, 5, 4, 3, 2, 1};
  std::vector<uint64_t> expected{1, 2, 3, 4, 5, 6, 7};
  HeapSort(&asc, ValueLess(), nullptr);
  HeapSort(&desc, ValueLess(), nullptr);
  EXPECT_EQ(asc, expected);
  EXPECT_EQ(desc, expected);
}

TEST(HeapSortTest, StableUnderDuplicates) {
  std::vector<uint64_t> v(500, 7);
  v[100] = 3;
  v[400] = 9;
  HeapSort(&v, ValueLess(), nullptr);
  EXPECT_EQ(v.front(), 3u);
  EXPECT_EQ(v.back(), 9u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(HeapSortTest, CustomComparatorSortsDescending) {
  std::vector<uint64_t> v{3, 1, 4, 1, 5, 9, 2, 6};
  HeapSort(&v, [](uint64_t a, uint64_t b) { return a > b; }, nullptr);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>()));
}

TEST(HeapSortTest, AverageCaseCompareCountNearNLogN) {
  // The Munro bounce keeps total comparisons near N log N (not 2 N log N).
  Rng rng(5);
  const size_t n = 1 << 14;
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = rng.Next();
  HeapCost cost;
  HeapSort(&v, ValueLess(), &cost);
  const double nlogn = double(n) * std::log2(double(n));
  EXPECT_LT(static_cast<double>(cost.compares), 1.35 * nlogn);
  EXPECT_GT(static_cast<double>(cost.compares), 0.8 * nlogn);
}

TEST(HeapSortModelTest, ModelCostsScale) {
  const HeapCost small = HeapSortModelCost(1000, 1000);
  const HeapCost large = HeapSortModelCost(2000, 1000);
  EXPECT_GT(large.compares, small.compares);
  const HeapCost build = FloydBuildModelCost(1000);
  EXPECT_NEAR(static_cast<double>(build.compares), 1770.0, 1.0);
  EXPECT_EQ(build.transfers, 1000u);
}

TEST(IsMinHeapTest, DetectsViolation) {
  std::vector<uint64_t> good{1, 2, 3, 4, 5};
  std::vector<uint64_t> bad{1, 2, 3, 0, 5};
  EXPECT_TRUE(IsMinHeap(good, ValueLess()));
  EXPECT_FALSE(IsMinHeap(bad, ValueLess()));
}

}  // namespace
}  // namespace mmjoin
