// The headline validation property of the paper (Fig. 5): the analytical
// model must track the measured execution across algorithms and memory
// sizes. We assert agreement within a tolerance band in the paging regime
// and a loose conservative band elsewhere (see EXPERIMENTS.md).
#include "model/join_model.h"

#include <gtest/gtest.h>

#include "join/grace.h"
#include "join/nested_loops.h"
#include "join/sort_merge.h"
#include "rel/generator.h"

namespace mmjoin::model {
namespace {

struct ValidationCase {
  join::Algorithm algorithm;
  double memory_fraction;  // of |R| * r
  double min_ratio;        // model/experiment bounds
  double max_ratio;
};

class ModelValidationTest : public ::testing::TestWithParam<ValidationCase> {
};

TEST_P(ModelValidationTest, ModelTracksExperiment) {
  const ValidationCase c = GetParam();
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  sim::SimEnv env(mc);

  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 25600;  // quarter paper scale: fast tests
  rc.num_partitions = 4;
  auto w = rel::BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());

  join::JoinParams params;
  params.m_rproc_bytes = static_cast<uint64_t>(
      c.memory_fraction * rc.r_objects * sizeof(rel::RObject));
  params.m_sproc_bytes = params.m_rproc_bytes;

  StatusOr<join::JoinRunResult> result = [&] {
    switch (c.algorithm) {
      case join::Algorithm::kNestedLoops:
        return join::RunNestedLoops(&env, *w, params);
      case join::Algorithm::kSortMerge:
        return join::RunSortMerge(&env, *w, params);
      default:
        return join::RunGrace(&env, *w, params);
    }
  }();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->verified);

  ModelInputs in;
  in.machine = mc;
  in.relation = rc;
  in.skew = w->skew;
  in.params = params;
  in.dtt = MeasureDttCurves(mc.disk);

  const CostBreakdown predicted = Predict(c.algorithm, in);
  const double ratio = predicted.total_ms() / result->elapsed_ms;
  EXPECT_GE(ratio, c.min_ratio)
      << "model " << predicted.total_ms() << " vs experiment "
      << result->elapsed_ms;
  EXPECT_LE(ratio, c.max_ratio)
      << "model " << predicted.total_ms() << " vs experiment "
      << result->elapsed_ms;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelValidationTest,
    ::testing::Values(
        // Paging regime: tight agreement (the paper's validation zone).
        ValidationCase{join::Algorithm::kNestedLoops, 0.10, 0.8, 1.4},
        ValidationCase{join::Algorithm::kNestedLoops, 0.20, 0.8, 1.6},
        ValidationCase{join::Algorithm::kSortMerge, 0.02, 0.8, 1.5},
        ValidationCase{join::Algorithm::kSortMerge, 0.05, 0.8, 1.5},
        ValidationCase{join::Algorithm::kGrace, 0.03, 0.8, 1.5},
        ValidationCase{join::Algorithm::kGrace, 0.06, 0.8, 1.5},
        // Cached regime: the paper's all-random-I/O assumption makes the
        // model conservative; allow the documented slack.
        ValidationCase{join::Algorithm::kNestedLoops, 0.60, 0.9, 3.0}),
    [](const ::testing::TestParamInfo<ValidationCase>& info) {
      std::string n = join::AlgorithmName(info.param.algorithm);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n + "_m" +
             std::to_string(
                 static_cast<int>(info.param.memory_fraction * 1000));
    });

TEST(ModelStructureTest, BreakdownCategoriesArePositive) {
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  ModelInputs in;
  in.machine = mc;
  in.relation = rel::RelationConfig{};
  in.skew = 1.0;
  in.params.m_rproc_bytes = 1 << 20;
  in.params.m_sproc_bytes = 1 << 20;
  in.dtt.read = DttCurve({{1, 6.0}, {12800, 20.0}});
  in.dtt.write = DttCurve({{1, 6.0}, {12800, 13.0}});
  for (auto a : {join::Algorithm::kNestedLoops, join::Algorithm::kSortMerge,
                 join::Algorithm::kGrace}) {
    const CostBreakdown c = Predict(a, in);
    EXPECT_GT(c.io_ms, 0.0) << join::AlgorithmName(a);
    EXPECT_GT(c.cpu_ms, 0.0) << join::AlgorithmName(a);
    EXPECT_GT(c.cs_ms, 0.0) << join::AlgorithmName(a);
    EXPECT_GT(c.setup_ms, 0.0) << join::AlgorithmName(a);
    EXPECT_GT(c.total_ms(), c.io_ms);
  }
}

TEST(ModelStructureTest, NestedLoopsMonotoneInMemory) {
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  ModelInputs in;
  in.machine = mc;
  in.relation = rel::RelationConfig{};
  in.skew = 1.0;
  in.dtt = MeasureDttCurves(mc.disk);
  double prev = 1e18;
  for (double frac : {0.05, 0.1, 0.2, 0.4, 0.7}) {
    in.params.m_rproc_bytes = static_cast<uint64_t>(
        frac * in.relation.r_objects * sizeof(rel::RObject));
    in.params.m_sproc_bytes = in.params.m_rproc_bytes;
    const double t = Predict(join::Algorithm::kNestedLoops, in).total_ms();
    EXPECT_LE(t, prev * 1.02) << "at " << frac;
    prev = t;
  }
}

TEST(ModelStructureTest, GraceNearlyFlatOutsideThrashRegion) {
  // Outside the thrash region Grace is governed by sequential passes whose
  // volume does not depend on memory; the paper's Fig. 5c spans less than
  // a 1.4x range there. (It is NOT monotone: bigger memory means fewer,
  // larger buckets, which widens the dtt band of the final pass.)
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  ModelInputs in;
  in.machine = mc;
  in.relation = rel::RelationConfig{};
  in.skew = 1.0;
  in.dtt = MeasureDttCurves(mc.disk);
  double lo = 1e18, hi = 0;
  for (double frac : {0.02, 0.04, 0.06, 0.08}) {
    in.params.m_rproc_bytes = static_cast<uint64_t>(
        frac * in.relation.r_objects * sizeof(rel::RObject));
    in.params.m_sproc_bytes = in.params.m_rproc_bytes;
    const double t = Predict(join::Algorithm::kGrace, in).total_ms();
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_LT(hi / lo, 1.4);
}

TEST(ModelStructureTest, SkewInflatesSynchronizedAlgorithms) {
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  ModelInputs in;
  in.machine = mc;
  in.relation = rel::RelationConfig{};
  in.params.m_rproc_bytes = 2 << 20;
  in.params.m_sproc_bytes = 2 << 20;
  in.dtt.read = DttCurve({{1, 6.0}, {12800, 20.0}});
  in.dtt.write = DttCurve({{1, 6.0}, {12800, 13.0}});
  in.skew = 1.0;
  const double even = PredictSortMerge(in).total_ms();
  in.skew = 1.5;
  const double skewed = PredictSortMerge(in).total_ms();
  EXPECT_GT(skewed, even);
}

TEST(ModelStructureTest, GraceThrashTermAppearsAtLowMemory) {
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  ModelInputs in;
  in.machine = mc;
  in.relation = rel::RelationConfig{};
  in.skew = 1.0;
  in.dtt = MeasureDttCurves(mc.disk);
  // Deep in the thrash region the io term must blow up super-linearly
  // versus a mid-memory point.
  auto total_at = [&](double frac) {
    in.params.m_rproc_bytes = static_cast<uint64_t>(
        frac * in.relation.r_objects * sizeof(rel::RObject));
    in.params.m_sproc_bytes = in.params.m_rproc_bytes;
    return PredictGrace(in).total_ms();
  };
  const double mid = total_at(0.04);
  const double low = total_at(0.005);
  EXPECT_GT(low, 1.5 * mid);
}

}  // namespace
}  // namespace mmjoin::model
