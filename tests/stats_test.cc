#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mmjoin {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, NumericallyStableForLargeOffsets) {
  RunningStat s;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) s.Add(offset + x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

TEST(HistogramTest, BucketsAndFractions) {
  Histogram h({0.0, 1.0, 2.0, 3.0});
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  h.Add(2.5);
  EXPECT_EQ(h.bucket_count(), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OutOfRangeClampsToEnds) {
  Histogram h({0.0, 1.0, 2.0});
  h.Add(-5.0);
  h.Add(99.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
}

TEST(HistogramTest, BoundaryGoesToUpperBucket) {
  Histogram h({0.0, 1.0, 2.0});
  h.Add(1.0);  // [1, 2) bucket
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.bucket(1), 1u);
}

TEST(FormatFixedTest, Formats) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(1.0, 0), "1");
  EXPECT_EQ(FormatFixed(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace mmjoin
