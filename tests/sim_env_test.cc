#include "sim/sim_env.h"

#include <gtest/gtest.h>

#include <cstring>

#include "sim/shared_buffer.h"

namespace mmjoin::sim {
namespace {

MachineConfig Config() { return MachineConfig::SequentSymmetry1996(); }

TEST(SimEnvTest, CreateSegmentAllocatesExtent) {
  SimEnv env(Config());
  auto seg = env.CreateSegment("a", 0, 10000, true);
  ASSERT_TRUE(seg.ok());
  const SimSegment& s = env.segment(*seg);
  EXPECT_EQ(s.name(), "a");
  EXPECT_EQ(s.disk(), 0u);
  EXPECT_EQ(s.pages(), 3u);  // ceil(10000 / 4096)
  EXPECT_TRUE(env.IsLive(*seg));
}

TEST(SimEnvTest, DeleteSegmentFreesExtent) {
  SimEnv env(Config());
  auto seg = env.CreateSegment("a", 0, 4096 * 100, true);
  ASSERT_TRUE(seg.ok());
  const uint64_t free_before = env.disks().FreeBlocks(0);
  ASSERT_TRUE(env.DeleteSegment(*seg).ok());
  EXPECT_EQ(env.disks().FreeBlocks(0), free_before + 100);
  EXPECT_FALSE(env.IsLive(*seg));
  EXPECT_FALSE(env.DeleteSegment(*seg).ok());
}

TEST(SimEnvTest, RejectsEmptyAndBadDisk) {
  SimEnv env(Config());
  EXPECT_FALSE(env.CreateSegment("e", 0, 0, true).ok());
  EXPECT_FALSE(env.CreateSegment("d", 99, 100, true).ok());
}

TEST(ProcessTest, ReadMaterializedChargesFault) {
  SimEnv env(Config());
  auto seg = env.CreateSegment("a", 0, 1 << 20, /*materialized=*/true);
  ASSERT_TRUE(seg.ok());
  Process p(&env, "p", 64 << 10);
  p.Read(*seg, 0, 128);
  EXPECT_EQ(p.stats().faults, 1u);
  EXPECT_GT(p.clock_ms(), 0.0);
  const double after_first = p.clock_ms();
  p.Read(*seg, 64, 128);  // same page: hit
  EXPECT_EQ(p.clock_ms(), after_first);
}

TEST(ProcessTest, FreshSegmentReadsAreZeroFill) {
  SimEnv env(Config());
  auto seg = env.CreateSegment("a", 0, 1 << 20, /*materialized=*/false);
  ASSERT_TRUE(seg.ok());
  Process p(&env, "p", 64 << 10);
  p.Write(*seg, 0, 128);
  EXPECT_EQ(p.stats().faults, 0u);
  EXPECT_EQ(p.clock_ms(), 0.0);
}

TEST(ProcessTest, WriteBackMaterializesPage) {
  SimEnv env(Config());
  auto seg = env.CreateSegment("a", 0, 1 << 20, false);
  ASSERT_TRUE(seg.ok());
  Process p(&env, "p", 64 << 10);
  p.Write(*seg, 0, 128);
  EXPECT_FALSE(env.segment(*seg).page_materialized(0));
  p.FlushCache();
  EXPECT_TRUE(env.segment(*seg).page_materialized(0));
  // A different process must now pay a real read for that page.
  Process q(&env, "q", 64 << 10);
  q.Read(*seg, 0, 128);
  EXPECT_EQ(q.stats().faults, 1u);
}

TEST(ProcessTest, RangeTouchesAllCoveredPages) {
  SimEnv env(Config());
  auto seg = env.CreateSegment("a", 0, 1 << 20, true);
  ASSERT_TRUE(seg.ok());
  Process p(&env, "p", 1 << 20);
  p.Read(*seg, 4000, 200);  // straddles pages 0 and 1
  EXPECT_EQ(p.stats().faults, 2u);
  p.Read(*seg, 3 * 4096, 3 * 4096);  // pages 3,4,5
  EXPECT_EQ(p.stats().faults, 5u);
}

TEST(ProcessTest, DataActuallyMoves) {
  SimEnv env(Config());
  auto seg = env.CreateSegment("a", 0, 1 << 20, false);
  ASSERT_TRUE(seg.ok());
  Process p(&env, "p", 64 << 10);
  void* dst = p.Write(*seg, 100, 16);
  std::memcpy(dst, "abcdefghijklmno", 16);
  const void* src = p.Read(*seg, 100, 16);
  EXPECT_EQ(std::memcmp(src, "abcdefghijklmno", 16), 0);
}

TEST(ProcessTest, ChargesAccumulateByCategory) {
  SimEnv env(Config());
  Process p(&env, "p", 64 << 10);
  p.ChargeCpu(5.0);
  p.ChargeSetup(7.0);
  p.ChargeContextSwitches(4);
  EXPECT_DOUBLE_EQ(p.stats().cpu_ms, 5.0 + 4 * env.config().cs_ms);
  EXPECT_DOUBLE_EQ(p.stats().setup_ms, 7.0);
  EXPECT_EQ(p.stats().context_switches, 4u);
  EXPECT_DOUBLE_EQ(p.clock_ms(),
                   5.0 + 7.0 + 4 * env.config().cs_ms);
  p.set_clock_ms(100.0);
  EXPECT_DOUBLE_EQ(p.clock_ms(), 100.0);
}

TEST(ProcessTest, ReadForChargesPayerNotOwner) {
  SimEnv env(Config());
  auto seg = env.CreateSegment("s", 0, 1 << 20, true);
  ASSERT_TRUE(seg.ok());
  Process sproc(&env, "sproc", 256 << 10);
  Process rproc(&env, "rproc", 256 << 10);
  sproc.ReadFor(&rproc, *seg, 0, 128);
  EXPECT_EQ(rproc.stats().faults, 1u);
  EXPECT_GT(rproc.clock_ms(), 0.0);
  EXPECT_EQ(sproc.stats().faults, 0u);
  EXPECT_EQ(sproc.clock_ms(), 0.0);
  // The page lives in sproc's cache: a second ReadFor is a hit and free.
  const double t = rproc.clock_ms();
  sproc.ReadFor(&rproc, *seg, 0, 128);
  EXPECT_EQ(rproc.clock_ms(), t);
}

TEST(ProcessTest, DropSegmentDiscardLosesWriteBack) {
  SimEnv env(Config());
  auto seg = env.CreateSegment("a", 0, 1 << 20, false);
  ASSERT_TRUE(seg.ok());
  Process p(&env, "p", 64 << 10);
  p.Write(*seg, 0, 128);
  p.DropSegment(*seg, /*discard=*/true);
  EXPECT_EQ(p.stats().write_backs, 0u);
  EXPECT_FALSE(env.segment(*seg).page_materialized(0));
}

TEST(GBufferTest, CapacityFromEntrySize) {
  GBuffer buf(4096, 272);  // 128 + 8 + 128 + ... roughly the join entry
  EXPECT_EQ(buf.capacity(), 4096u / 272u);
  GBuffer tiny(16, 272);
  EXPECT_EQ(tiny.capacity(), 1u);  // never zero
}

TEST(GBufferTest, ChargesTwoSwitchesPerExchange) {
  MachineConfig mc = Config();
  SimEnv env(mc);
  Process p(&env, "p", 64 << 10);
  GBuffer buf(3 * 100, 100);  // capacity 3
  EXPECT_EQ(buf.Add(&p), 0u);
  EXPECT_EQ(buf.Add(&p), 0u);
  EXPECT_EQ(buf.Add(&p), 3u);  // full: exchange
  EXPECT_EQ(p.stats().context_switches, 2u);
  EXPECT_EQ(buf.exchanges(), 1u);
  EXPECT_GT(p.stats().cpu_ms, 2 * mc.cs_ms - 1e-9);  // + transfer cost
}

TEST(GBufferTest, FlushDrainsPartialBatch) {
  SimEnv env(Config());
  Process p(&env, "p", 64 << 10);
  GBuffer buf(1000, 100);
  buf.Add(&p);
  buf.Add(&p);
  EXPECT_EQ(buf.pending(), 2u);
  EXPECT_EQ(buf.Flush(&p), 2u);
  EXPECT_EQ(buf.pending(), 0u);
  EXPECT_EQ(buf.Flush(&p), 0u);  // nothing left: no switches charged
  EXPECT_EQ(p.stats().context_switches, 2u);
}

}  // namespace
}  // namespace mmjoin::sim
