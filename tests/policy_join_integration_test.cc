// Replacement-policy integration: every join must stay correct under every
// policy, and the policies must differ measurably where the paper says LRU
// misbehaves (scanning patterns).
#include <gtest/gtest.h>

#include <tuple>

#include "join/grace.h"
#include "join/nested_loops.h"
#include "join/sort_merge.h"
#include "rel/generator.h"

namespace mmjoin::join {
namespace {

using Case = std::tuple<Algorithm, vm::PolicyKind>;

class PolicyJoinTest : public ::testing::TestWithParam<Case> {};

TEST_P(PolicyJoinTest, CorrectUnderEveryPolicy) {
  const auto [algorithm, policy] = GetParam();
  sim::SimEnv env(sim::MachineConfig::SequentSymmetry1996());
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 8192;
  rc.zipf_theta = 0.4;
  auto w = rel::BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());
  JoinParams p;
  p.m_rproc_bytes = 128 << 10;  // scarce: the policy actually evicts
  p.m_sproc_bytes = 128 << 10;
  p.policy = policy;
  StatusOr<JoinRunResult> r = [&, algorithm = algorithm] {
    switch (algorithm) {
      case Algorithm::kNestedLoops:
        return RunNestedLoops(&env, *w, p);
      case Algorithm::kSortMerge:
        return RunSortMerge(&env, *w, p);
      default:
        return RunGrace(&env, *w, p);
    }
  }();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->verified);
  EXPECT_GT(r->faults, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PolicyJoinTest,
    ::testing::Combine(::testing::Values(Algorithm::kNestedLoops,
                                         Algorithm::kSortMerge,
                                         Algorithm::kGrace),
                       ::testing::Values(vm::PolicyKind::kLru,
                                         vm::PolicyKind::kClock,
                                         vm::PolicyKind::kFifo)),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string n = AlgorithmName(std::get<0>(info.param));
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n + "_" + vm::PolicyKindName(std::get<1>(info.param));
    });

TEST(PolicyJoinDifferential, PoliciesProduceDifferentFaultCounts) {
  // Same workload and memory, different policies: at least one pair of
  // policies must disagree on fault counts for the Grace bucket pattern
  // (otherwise the ablation ABL-3 would be vacuous).
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 16384;
  uint64_t faults[3];
  int idx = 0;
  for (auto policy : {vm::PolicyKind::kLru, vm::PolicyKind::kClock,
                      vm::PolicyKind::kFifo}) {
    sim::SimEnv env(sim::MachineConfig::SequentSymmetry1996());
    auto w = rel::BuildWorkload(&env, rc);
    ASSERT_TRUE(w.ok());
    JoinParams p;
    p.m_rproc_bytes = 24 * 4096;  // deep in the thrash region
    p.m_sproc_bytes = 24 * 4096;
    p.policy = policy;
    auto r = RunGrace(&env, *w, p);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->verified);
    faults[idx++] = r->faults;
  }
  EXPECT_TRUE(faults[0] != faults[1] || faults[1] != faults[2])
      << "LRU=" << faults[0] << " CLOCK=" << faults[1]
      << " FIFO=" << faults[2];
}

TEST(GBufferIntegration, LargerGMeansFewerContextSwitches) {
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 8192;
  uint64_t switches[2];
  uint64_t checksum[2];
  int idx = 0;
  for (uint64_t g : {uint64_t{512}, uint64_t{32768}}) {
    sim::SimEnv env(sim::MachineConfig::SequentSymmetry1996());
    auto w = rel::BuildWorkload(&env, rc);
    ASSERT_TRUE(w.ok());
    JoinParams p;
    p.m_rproc_bytes = 512 << 10;
    p.m_sproc_bytes = 512 << 10;
    p.g_bytes = g;
    auto r = RunNestedLoops(&env, *w, p);
    ASSERT_TRUE(r.ok());
    uint64_t cs = 0;
    for (const auto& s : r->rproc_stats) cs += s.context_switches;
    switches[idx] = cs;
    checksum[idx] = r->output_checksum;
    ++idx;
  }
  EXPECT_GT(switches[0], switches[1] * 10);  // ~64x fewer exchanges
  EXPECT_EQ(checksum[0], checksum[1]);
}

}  // namespace
}  // namespace mmjoin::join
