// Grace parameter choice (section 7.2) and the monotone coarse hash that
// lets S be read sequentially across buckets.
#include <gtest/gtest.h>

#include "join/grace.h"

namespace mmjoin::join {
namespace {

TEST(PlanGraceTest, BucketFitsMemory) {
  const uint64_t rs = 25600;
  for (uint64_t mem : {128ull << 10, 512ull << 10, 2ull << 20}) {
    JoinParams p;
    const auto plan = PlanGrace(mem, rs, p);
    // One bucket's objects (with fuzz overhead) must fit in memory.
    const double bucket_bytes = p.fuzz * double(rs) / plan.k_buckets *
                                sizeof(rel::RObject);
    EXPECT_LE(bucket_bytes, double(mem) * 1.05) << "mem=" << mem;
  }
}

TEST(PlanGraceTest, KNonincreasingInMemory) {
  uint32_t prev = UINT32_MAX;
  for (uint64_t mem = 64ull << 10; mem <= 8ull << 20; mem *= 2) {
    const auto plan = PlanGrace(mem, 25600, JoinParams{});
    EXPECT_LE(plan.k_buckets, prev);
    prev = plan.k_buckets;
  }
  EXPECT_EQ(prev, 1u);  // everything fits: one bucket
}

TEST(PlanGraceTest, TsizeIsPowerOfTwoWithFloor) {
  for (uint64_t mem : {128ull << 10, 1ull << 20}) {
    const auto plan = PlanGrace(mem, 25600, JoinParams{});
    EXPECT_GE(plan.tsize, 64u);
    EXPECT_EQ(plan.tsize & (plan.tsize - 1), 0u);
  }
}

TEST(PlanGraceTest, ManualOverridesWin) {
  JoinParams p;
  p.k_buckets = 13;
  p.tsize = 33;  // deliberately not a power of two: must be honoured
  const auto plan = PlanGrace(1 << 20, 25600, p);
  EXPECT_EQ(plan.k_buckets, 13u);
  EXPECT_EQ(plan.tsize, 33u);
}

TEST(GraceBucketTest, MonotoneInIndex) {
  const uint64_t s_count = 25600;
  const uint32_t k = 17;
  uint32_t prev = 0;
  for (uint64_t idx = 0; idx < s_count; idx += 37) {
    const uint32_t b = GraceBucketOf(idx, s_count, k);
    EXPECT_GE(b, prev) << "idx=" << idx;
    EXPECT_LT(b, k);
    prev = b;
  }
}

TEST(GraceBucketTest, CoversAllBuckets) {
  const uint64_t s_count = 1000;
  const uint32_t k = 10;
  std::vector<int> hit(k, 0);
  for (uint64_t idx = 0; idx < s_count; ++idx) {
    ++hit[GraceBucketOf(idx, s_count, k)];
  }
  for (uint32_t b = 0; b < k; ++b) {
    EXPECT_EQ(hit[b], 100) << "bucket " << b;  // perfectly even ranges
  }
}

TEST(GraceBucketTest, EdgeCases) {
  EXPECT_EQ(GraceBucketOf(0, 0, 5), 0u);        // empty partition
  EXPECT_EQ(GraceBucketOf(0, 100, 1), 0u);      // single bucket
  EXPECT_EQ(GraceBucketOf(99, 100, 100), 99u);  // one object per bucket
  // More buckets than objects: the last object maps below k.
  EXPECT_LT(GraceBucketOf(4, 5, 64), 64u);
}

TEST(GraceBucketTest, BucketBoundariesPreserveSPtrOrder) {
  // For any two pointers a < b (same partition), bucket(a) <= bucket(b):
  // the property that makes the final pass read S sequentially.
  const uint64_t s_count = 4096;
  const uint32_t k = 7;
  for (uint64_t a = 0; a < s_count; a += 61) {
    for (uint64_t b = a; b < s_count; b += 127) {
      EXPECT_LE(GraceBucketOf(a, s_count, k), GraceBucketOf(b, s_count, k));
    }
  }
}

}  // namespace
}  // namespace mmjoin::join
