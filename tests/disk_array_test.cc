#include "disk/disk_array.h"

#include <gtest/gtest.h>

namespace mmjoin::disk {
namespace {

DiskGeometry SmallGeo() {
  DiskGeometry g;
  g.num_blocks = 1000;
  return g;
}

TEST(DiskArrayTest, AllocateIsContiguousAndOrdered) {
  DiskArray arr(2, SmallGeo());
  auto a = arr.Allocate(0, 100);
  auto b = arr.Allocate(0, 50);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->start_block, 0u);
  EXPECT_EQ(b->start_block, 100u);
  EXPECT_EQ(arr.FreeBlocks(0), 850u);
  EXPECT_EQ(arr.FreeBlocks(1), 1000u);
}

TEST(DiskArrayTest, AllocationExhaustion) {
  DiskArray arr(1, SmallGeo());
  auto a = arr.Allocate(0, 1000);
  ASSERT_TRUE(a.ok());
  auto b = arr.Allocate(0, 1);
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
}

TEST(DiskArrayTest, FreeCoalescesNeighbours) {
  DiskArray arr(1, SmallGeo());
  auto a = arr.Allocate(0, 100);
  auto b = arr.Allocate(0, 100);
  auto c = arr.Allocate(0, 100);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(arr.Free(*a).ok());
  ASSERT_TRUE(arr.Free(*c).ok());
  ASSERT_TRUE(arr.Free(*b).ok());
  // Everything coalesced: a fresh 1000-block allocation must succeed.
  auto big = arr.Allocate(0, 1000);
  EXPECT_TRUE(big.ok());
  EXPECT_EQ(big->start_block, 0u);
}

TEST(DiskArrayTest, FirstFitReusesHoles) {
  DiskArray arr(1, SmallGeo());
  auto a = arr.Allocate(0, 100);
  auto b = arr.Allocate(0, 100);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(arr.Free(*a).ok());
  auto c = arr.Allocate(0, 80);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->start_block, 0u);  // fits in the first hole
}

TEST(DiskArrayTest, DoubleFreeRejected) {
  DiskArray arr(1, SmallGeo());
  auto a = arr.Allocate(0, 100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(arr.Free(*a).ok());
  EXPECT_FALSE(arr.Free(*a).ok());
}

TEST(DiskArrayTest, InvalidArgumentsRejected) {
  DiskArray arr(2, SmallGeo());
  EXPECT_EQ(arr.Allocate(5, 10).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(arr.Allocate(0, 0).status().code(),
            StatusCode::kInvalidArgument);
  Extent bogus{7, 0, 10};
  EXPECT_FALSE(arr.Free(bogus).ok());
}

TEST(DiskArrayTest, DisksAreIndependent) {
  DiskArray arr(2, SmallGeo());
  arr.disk(0).ReadBlock(500);
  EXPECT_GT(arr.disk(0).stats().reads, 0u);
  EXPECT_EQ(arr.disk(1).stats().reads, 0u);
  EXPECT_GT(arr.TotalBusyMs(), 0.0);
  arr.ResetStats();
  EXPECT_EQ(arr.TotalBusyMs(), 0.0);
}

TEST(ExtentTest, Contains) {
  Extent e{0, 100, 50};
  EXPECT_TRUE(e.Contains(100));
  EXPECT_TRUE(e.Contains(149));
  EXPECT_FALSE(e.Contains(150));
  EXPECT_FALSE(e.Contains(99));
}

}  // namespace
}  // namespace mmjoin::disk
