#include "rel/generator.h"

#include <gtest/gtest.h>

#include "join/oracle.h"

namespace mmjoin::rel {
namespace {

sim::MachineConfig Config(uint32_t disks = 4) {
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  mc.num_disks = disks;
  return mc;
}

TEST(SPtrTest, PackUnpackRoundTrip) {
  for (uint32_t part : {0u, 1u, 3u, 4095u}) {
    for (uint64_t idx : {0ull, 1ull, 102399ull, (1ull << 52) - 1}) {
      const SPtr sp{part, idx};
      const SPtr back = SPtr::Unpack(sp.Pack());
      EXPECT_EQ(back.partition, part);
      EXPECT_EQ(back.index, idx);
    }
  }
}

TEST(SPtrTest, PackedOrderIsPartitionMajor) {
  EXPECT_LT((SPtr{0, 99}.Pack()), (SPtr{1, 0}.Pack()));
  EXPECT_LT((SPtr{1, 5}.Pack()), (SPtr{1, 6}.Pack()));
}

TEST(GeneratorTest, PartitionSizesBalance) {
  sim::SimEnv env(Config());
  RelationConfig rc;
  rc.r_objects = 1000;
  rc.s_objects = 1003;  // not divisible by 4
  auto w = BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());
  uint64_t r_total = 0, s_total = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    r_total += w->r_count[i];
    s_total += w->s_count[i];
  }
  EXPECT_EQ(r_total, 1000u);
  EXPECT_EQ(s_total, 1003u);
  EXPECT_EQ(w->s_count[3], 253u);  // last absorbs the remainder
}

TEST(GeneratorTest, CountsMatrixConsistent) {
  sim::SimEnv env(Config());
  RelationConfig rc;
  rc.r_objects = rc.s_objects = 4096;
  auto w = BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());
  for (uint32_t i = 0; i < 4; ++i) {
    uint64_t row = 0;
    for (uint32_t j = 0; j < 4; ++j) row += w->counts[i][j];
    EXPECT_EQ(row, w->r_count[i]);
  }
}

TEST(GeneratorTest, UniformSkewNearOne) {
  sim::SimEnv env(Config());
  RelationConfig rc;
  rc.r_objects = rc.s_objects = 102400 / 4;  // keep the test fast
  rc.zipf_theta = 0.0;
  auto w = BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());
  EXPECT_GT(w->skew, 0.95);
  EXPECT_LT(w->skew, 1.10);
}

TEST(GeneratorTest, ZipfSkewExceedsUniform) {
  sim::SimEnv env1(Config()), env2(Config());
  RelationConfig rc;
  rc.r_objects = rc.s_objects = 8192;
  rc.zipf_theta = 0.0;
  auto uniform = BuildWorkload(&env1, rc);
  rc.zipf_theta = 0.9;
  auto skewed = BuildWorkload(&env2, rc);
  ASSERT_TRUE(uniform.ok() && skewed.ok());
  EXPECT_GT(skewed->skew, uniform->skew + 0.3);
  // Zipf mass concentrates in partition 0 (low S indices).
  uint64_t to_part0 = 0, total = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    to_part0 += skewed->counts[i][0];
    for (uint32_t j = 0; j < 4; ++j) total += skewed->counts[i][j];
  }
  EXPECT_GT(to_part0 * 2, total);  // more than half the pointers
}

TEST(GeneratorTest, SKeysMatchDefinition) {
  sim::SimEnv env(Config(2));
  RelationConfig rc;
  rc.r_objects = rc.s_objects = 256;
  rc.num_partitions = 2;
  auto w = BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());
  for (uint32_t i = 0; i < 2; ++i) {
    const auto* objs =
        reinterpret_cast<const SObject*>(env.segment(w->s_segs[i]).raw());
    for (uint64_t k = 0; k < w->s_count[i]; ++k) {
      EXPECT_EQ(objs[k].key, SKeyFor(i, k));
    }
  }
}

TEST(GeneratorTest, AllSPtrsAreValid) {
  sim::SimEnv env(Config());
  RelationConfig rc;
  rc.r_objects = rc.s_objects = 5000;
  rc.zipf_theta = 0.7;
  auto w = BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());
  for (uint32_t i = 0; i < 4; ++i) {
    const auto* objs =
        reinterpret_cast<const RObject*>(env.segment(w->r_segs[i]).raw());
    for (uint64_t k = 0; k < w->r_count[i]; ++k) {
      const SPtr sp = SPtr::Unpack(objs[k].sptr);
      ASSERT_LT(sp.partition, 4u);
      ASSERT_LT(sp.index, w->s_count[sp.partition]);
    }
  }
}

TEST(GeneratorTest, ExpectedChecksumMatchesOracle) {
  sim::SimEnv env(Config());
  RelationConfig rc;
  rc.r_objects = rc.s_objects = 3000;
  rc.zipf_theta = 0.4;
  auto w = BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());
  const auto oracle = join::OracleJoin(&env, *w);
  EXPECT_EQ(oracle.count, w->expected_output_count);
  EXPECT_EQ(oracle.checksum, w->expected_checksum);
  EXPECT_EQ(oracle.count, rc.r_objects);
}

TEST(GeneratorTest, DeterministicForSeed) {
  sim::SimEnv env1(Config()), env2(Config());
  RelationConfig rc;
  rc.r_objects = rc.s_objects = 2048;
  rc.seed = 777;
  auto a = BuildWorkload(&env1, rc);
  auto b = BuildWorkload(&env2, rc);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->expected_checksum, b->expected_checksum);
  EXPECT_EQ(a->skew, b->skew);
}

TEST(GeneratorTest, RejectsBadConfigs) {
  sim::SimEnv env(Config());
  RelationConfig rc;
  rc.num_partitions = 8;  // mismatch with env's 4 disks
  EXPECT_FALSE(BuildWorkload(&env, rc).ok());
  rc.num_partitions = 4;
  rc.r_objects = 0;
  EXPECT_FALSE(BuildWorkload(&env, rc).ok());
  rc.r_objects = 2;  // fewer than partitions
  rc.s_objects = 100;
  EXPECT_FALSE(BuildWorkload(&env, rc).ok());
}

TEST(GeneratorTest, DiskLayoutIsRiThenSi) {
  sim::SimEnv env(Config());
  RelationConfig rc;
  rc.r_objects = rc.s_objects = 4096;
  auto w = BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());
  for (uint32_t i = 0; i < 4; ++i) {
    const auto& r_ext = env.segment(w->r_segs[i]).extent();
    const auto& s_ext = env.segment(w->s_segs[i]).extent();
    EXPECT_EQ(r_ext.disk, i);
    EXPECT_EQ(s_ext.disk, i);
    EXPECT_EQ(s_ext.start_block, r_ext.start_block + r_ext.num_blocks);
  }
}

}  // namespace
}  // namespace mmjoin::rel
