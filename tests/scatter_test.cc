// The software write-combining scatter layer and NUMA placement options:
// ScatterBuffer staging/flush semantics, CopyTuples' non-temporal path,
// buffered-vs-direct bit-identity across every real join x scatter mode x
// schedule x worker count, NUMA option fallback on non-NUMA hosts, the
// scatter/numa metrics surface, and the RUSAGE_THREAD per-pass fault
// accounting invariant (sum of per-pass faults == total faults).
#include "exec/scatter.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "exec/numa.h"
#include "mmap/mm_relation.h"
#include "mmap/mmap_join.h"
#include "obs/metrics.h"
#include "rel/relation.h"

namespace mmjoin::exec {
namespace {

rel::RObject MakeObj(uint64_t id) {
  rel::RObject obj;
  obj.id = id;
  obj.sptr = id * 31 + 7;
  std::memset(obj.payload, static_cast<int>(id & 0xff), sizeof(obj.payload));
  return obj;
}

/// Sink that records (dest, run length) arrivals and reassembles each
/// destination's byte stream, so tests can compare against direct order.
struct RecordingSink {
  std::vector<std::vector<rel::RObject>> streams;
  std::vector<std::pair<uint32_t, uint64_t>> runs;

  explicit RecordingSink(uint32_t n_dests) : streams(n_dests) {}

  ScatterSink fn() {
    return [this](uint32_t dest, const rel::RObject* run, uint64_t n) {
      runs.emplace_back(dest, n);
      streams[dest].insert(streams[dest].end(), run, run + n);
    };
  }
};

bool SameObjects(const std::vector<rel::RObject>& a,
                 const std::vector<rel::RObject>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(rel::RObject)) ==
         0;
}

// ---------------------------------------------------------------------------
// ScatterBuffer unit tests.
// ---------------------------------------------------------------------------

TEST(ScatterBufferTest, PassThroughForwardsEveryTupleAsRunOfOne) {
  ScatterBuffer buf;
  RecordingSink sink(3);
  buf.Begin(3, /*capacity=*/0, sink.fn());
  for (uint64_t k = 0; k < 10; ++k) buf.Add(k % 3, MakeObj(k));
  buf.Flush();
  EXPECT_EQ(sink.runs.size(), 10u);
  for (const auto& [dest, n] : sink.runs) EXPECT_EQ(n, 1u);
  // Pass-through stages nothing, so the staging telemetry stays zero.
  EXPECT_EQ(buf.stats().tuples, 0u);
  EXPECT_EQ(buf.stats().flushes, 0u);
  EXPECT_EQ(buf.stats().partial_flushes, 0u);
}

TEST(ScatterBufferTest, BufferedPreservesPerDestinationScanOrder) {
  const uint32_t kDests = 5;
  const uint32_t kCap = 4;
  RecordingSink direct(kDests), buffered(kDests);

  std::vector<std::pair<uint32_t, rel::RObject>> tuples;
  for (uint64_t k = 0; k < 103; ++k) {
    tuples.emplace_back(static_cast<uint32_t>((k * 7 + k / 13) % kDests),
                        MakeObj(k));
  }

  {
    ScatterBuffer buf;
    buf.Begin(kDests, 0, direct.fn());
    for (const auto& [dest, obj] : tuples) buf.Add(dest, obj);
    buf.Flush();
  }
  ScatterBuffer buf;
  buf.Begin(kDests, kCap, buffered.fn());
  for (const auto& [dest, obj] : tuples) buf.Add(dest, obj);
  buf.Flush();

  // Byte-identical per destination, even though run boundaries differ.
  for (uint32_t dest = 0; dest < kDests; ++dest) {
    EXPECT_TRUE(SameObjects(direct.streams[dest], buffered.streams[dest]))
        << "dest=" << dest;
  }
  EXPECT_EQ(buf.stats().tuples, tuples.size());
  uint64_t full = 0, partial_tuples = 0;
  for (const auto& [dest, n] : buffered.runs) {
    if (n == kCap) {
      ++full;
    } else {
      partial_tuples += n;
    }
  }
  EXPECT_EQ(buf.stats().flushes, full);
  EXPECT_EQ(full * kCap + partial_tuples, tuples.size());
}

TEST(ScatterBufferTest, AddRunMatchesPerTupleAddsByteForByte) {
  const uint32_t kDests = 3;
  const uint32_t kCap = 4;
  std::vector<rel::RObject> run;
  for (uint64_t k = 100; k < 111; ++k) run.push_back(MakeObj(k));

  // Pass-through: the run must arrive as per-tuple forwards — exactly the
  // historical append pattern the direct baseline preserves.
  {
    ScatterBuffer buf;
    RecordingSink sink(kDests);
    buf.Begin(kDests, 0, sink.fn());
    buf.AddRun(1, run.data(), run.size());
    buf.Flush();
    EXPECT_EQ(sink.runs.size(), run.size());
    for (const auto& [dest, n] : sink.runs) EXPECT_EQ(n, 1u);
    EXPECT_TRUE(SameObjects(sink.streams[1], run));
  }

  // Buffered: staged tuples precede the run (scan order), and the run
  // itself arrives as ONE bulk sink call — no re-staging.
  ScatterBuffer buf;
  RecordingSink sink(kDests);
  buf.Begin(kDests, kCap, sink.fn());
  buf.Add(1, MakeObj(1));
  buf.Add(1, MakeObj(2));
  buf.Add(2, MakeObj(3));
  buf.AddRun(1, run.data(), run.size());
  buf.AddRun(1, run.data(), 0);  // empty run is a no-op
  buf.Flush();

  std::vector<rel::RObject> want = {MakeObj(1), MakeObj(2)};
  want.insert(want.end(), run.begin(), run.end());
  EXPECT_TRUE(SameObjects(sink.streams[1], want));
  EXPECT_TRUE(SameObjects(sink.streams[2], {MakeObj(3)}));
  // dest 1 drains as: partial slab of 2, then the bulk run of 11.
  ASSERT_GE(sink.runs.size(), 2u);
  EXPECT_EQ(sink.runs[0], (std::pair<uint32_t, uint64_t>{1u, 2u}));
  EXPECT_EQ(sink.runs[1],
            (std::pair<uint32_t, uint64_t>{1u, run.size()}));
  EXPECT_EQ(buf.stats().tuples, 2u + 1u + run.size());
}

TEST(ScatterBufferTest, EpilogueDrainsPartialSlabsInAscendingDestOrder) {
  ScatterBuffer buf;
  RecordingSink sink(4);
  buf.Begin(4, /*capacity=*/8, sink.fn());
  // Stage into dests 3, 1, 0 (none fills); dest 2 stays empty.
  buf.Add(3, MakeObj(1));
  buf.Add(1, MakeObj(2));
  buf.Add(1, MakeObj(3));
  buf.Add(0, MakeObj(4));
  buf.Flush();
  ASSERT_EQ(sink.runs.size(), 3u);
  EXPECT_EQ(sink.runs[0], (std::pair<uint32_t, uint64_t>{0, 1}));
  EXPECT_EQ(sink.runs[1], (std::pair<uint32_t, uint64_t>{1, 2}));
  EXPECT_EQ(sink.runs[2], (std::pair<uint32_t, uint64_t>{3, 1}));
  EXPECT_EQ(buf.stats().partial_flushes, 3u);
  EXPECT_EQ(buf.stats().flushes, 0u);
}

TEST(ScatterBufferTest, EmptyMorselFlushIsANoOp) {
  ScatterBuffer buf;
  RecordingSink sink(2);
  buf.Begin(2, 16, sink.fn());
  buf.Flush();
  EXPECT_TRUE(sink.runs.empty());
  EXPECT_EQ(buf.stats().partial_flushes, 0u);
  // Flush on an inactive buffer (the backend's per-morsel safety net when
  // a body never scattered) must also be a no-op.
  buf.Flush();
  EXPECT_TRUE(sink.runs.empty());
}

TEST(ScatterBufferTest, StorageIsRetainedAcrossMorsels) {
  ScatterBuffer buf;
  RecordingSink a(2), b(8);
  buf.Begin(2, 4, a.fn());
  buf.Add(0, MakeObj(1));
  buf.Flush();
  // Re-arm with more destinations: prior staged state must not leak.
  buf.Begin(8, 4, b.fn());
  buf.Add(7, MakeObj(2));
  buf.Flush();
  ASSERT_EQ(b.runs.size(), 1u);
  EXPECT_EQ(b.runs[0].first, 7u);
  EXPECT_EQ(b.streams[7][0].id, 2u);
}

TEST(CopyTuplesTest, StreamAndMemcpyProduceIdenticalBytes) {
  std::vector<rel::RObject> src;
  for (uint64_t k = 0; k < 64; ++k) src.push_back(MakeObj(k));
  // 16-aligned destination: eligible for the non-temporal path.
  alignas(64) static rel::RObject dst_stream[64];
  alignas(64) static rel::RObject dst_copy[64];
  CopyTuples(dst_stream, src.data(), src.size(), /*stream=*/true);
  ScatterFence();
  CopyTuples(dst_copy, src.data(), src.size(), /*stream=*/false);
  EXPECT_EQ(std::memcmp(dst_stream, dst_copy, sizeof(dst_copy)), 0);
  // Unaligned destination: the stream path must fall back, not fault.
  std::vector<uint8_t> raw(sizeof(rel::RObject) + 8);
  CopyTuples(raw.data() + (reinterpret_cast<uintptr_t>(raw.data()) % 16 == 0
                               ? 8
                               : 0),
             src.data(), 1, /*stream=*/true);
}

// ---------------------------------------------------------------------------
// Identity across the real joins: scatter x schedule x workers, plus the
// NUMA modes, must all reproduce the workload's expected count/checksum.
// ---------------------------------------------------------------------------

class ScatterJoinIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "scatter_" + std::to_string(::getpid()) +
           "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  mm::MmWorkload Build(double theta) {
    rel::RelationConfig rc;
    rc.r_objects = rc.s_objects = 8192;
    rc.num_partitions = 8;
    rc.zipf_theta = theta;
    auto w = mm::BuildMmWorkload(mgr_.get(), "w" + std::to_string(builds_++),
                                 rc);
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    return std::move(w).value();
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
  int builds_ = 0;
};

using MmJoinFn = StatusOr<mm::MmJoinResult> (*)(const mm::MmWorkload&,
                                                const mm::MmJoinOptions&);
constexpr MmJoinFn kJoins[] = {mm::MmNestedLoops, mm::MmSortMerge,
                               mm::MmGrace, mm::MmHybridHash};

TEST_F(ScatterJoinIdentityTest, ScatterScheduleWorkerMatrix) {
  for (double theta : {0.0, 1.1}) {
    const mm::MmWorkload w = Build(theta);
    for (MmJoinFn join : kJoins) {
      for (ScatterMode scatter : {ScatterMode::kDirect, ScatterMode::kBuffered,
                                  ScatterMode::kStream}) {
        for (Schedule schedule : {Schedule::kStatic, Schedule::kStealing}) {
          for (uint32_t workers : {1u, 2u, 8u}) {
            mm::MmJoinOptions opt;
            opt.scatter = scatter;
            opt.schedule = schedule;
            opt.max_threads = workers;
            auto r = join(w, opt);
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            // verified == matched the workload's expected count/checksum,
            // so every combination passing pins the identity against the
            // direct baseline (and the simulator, via cross_backend_test).
            EXPECT_TRUE(r->verified)
                << "theta=" << theta
                << " scatter=" << ScatterModeName(scatter)
                << " schedule=" << ScheduleName(schedule)
                << " workers=" << workers;
            EXPECT_EQ(r->output_count, w.expected_output_count);
            EXPECT_EQ(r->output_checksum, w.expected_checksum);
            if (scatter == ScatterMode::kDirect) {
              EXPECT_EQ(r->run.scatter_tuples, 0u);
              EXPECT_EQ(r->run.scatter_flushes, 0u);
            } else {
              // Every driver routes its partition passes through the
              // staging path now, so tuples must flow regardless of
              // schedule or worker count.
              EXPECT_GT(r->run.scatter_tuples, 0u);
            }
          }
        }
      }
    }
  }
}

TEST_F(ScatterJoinIdentityTest, ScatterTuplesSweepDoesNotChangeResults) {
  const mm::MmWorkload w = Build(1.1);
  // 1 staged tuple (degenerate: every Add flushes), odd sizes, the max,
  // and an over-limit value that must clamp rather than misbehave.
  for (uint32_t tuples : {1u, 3u, 16u, 256u, 100000u}) {
    for (MmJoinFn join : kJoins) {
      mm::MmJoinOptions opt;
      opt.scatter = ScatterMode::kBuffered;
      opt.scatter_tuples = tuples;
      auto r = join(w, opt);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r->verified) << "scatter_tuples=" << tuples;
      EXPECT_EQ(r->output_count, w.expected_output_count);
      EXPECT_EQ(r->output_checksum, w.expected_checksum);
    }
  }
}

TEST_F(ScatterJoinIdentityTest, NumaModesFallBackGracefullyAndVerify) {
  const mm::MmWorkload w = Build(0.0);
  const uint32_t nodes = DetectNumaNodes();
  EXPECT_GE(nodes, 1u);
  for (NumaMode numa :
       {NumaMode::kNone, NumaMode::kInterleave, NumaMode::kLocal}) {
    for (MmJoinFn join : kJoins) {
      mm::MmJoinOptions opt;
      opt.numa = numa;
      auto r = join(w, opt);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r->verified) << "numa=" << NumaModeName(numa);
      // Placement is best-effort but must never error out on this host:
      // single-node machines degrade to counted no-ops.
      EXPECT_TRUE(r->numa_status.ok()) << r->numa_status.ToString();
      EXPECT_EQ(r->run.numa_mbind_errors, 0u);
      if (numa == NumaMode::kNone) {
        EXPECT_EQ(r->run.numa_nodes, 0u);
        EXPECT_EQ(r->run.numa_mbind_calls, 0u);
        EXPECT_EQ(r->run.numa_first_touch_pages, 0u);
      } else {
        EXPECT_EQ(r->run.numa_nodes, nodes);
        if (nodes <= 1) EXPECT_EQ(r->run.numa_mbind_calls, 0u);
        if (numa == NumaMode::kLocal) {
          // First touch runs even on one node (it is just a pre-fault).
          EXPECT_GT(r->run.numa_first_touch_pages, 0u);
        }
      }
    }
  }
}

TEST(NumaUnitTest, BindInterleavedSingleNodeIsACountedNoOp) {
  alignas(4096) static char buf[4096];
  bool applied = true;
  EXPECT_TRUE(BindInterleaved(buf, sizeof(buf), 1, &applied).ok());
  EXPECT_FALSE(applied);
  applied = true;
  EXPECT_TRUE(BindInterleaved(buf, 0, 4, &applied).ok());
  EXPECT_FALSE(applied);
}

// ---------------------------------------------------------------------------
// Metrics surface: scatter/numa counters appear exactly when active.
// ---------------------------------------------------------------------------

TEST_F(ScatterJoinIdentityTest, MetricsExportMatchesOptions) {
  const mm::MmWorkload w = Build(0.0);

  mm::MmJoinOptions buffered;
  buffered.scatter = ScatterMode::kBuffered;
  buffered.numa = NumaMode::kLocal;
  auto r = mm::MmGrace(w, buffered);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  obs::MetricsRegistry reg;
  r->ExportMetrics(&reg);
  EXPECT_GT(reg.counter("join.scatter.flushes").value() +
                reg.counter("join.scatter.partial_flushes").value(),
            0u);
  EXPECT_EQ(reg.counter("join.scatter.tuples").value(),
            r->run.scatter_tuples);
  EXPECT_GE(reg.counter("join.numa.nodes").value(), 1u);
  EXPECT_EQ(reg.counter("join.numa.first_touch_pages").value(),
            r->run.numa_first_touch_pages);

  // Direct + numa=none: the blocks are gated out entirely, so a fresh
  // registry stays free of scatter/numa names (the simulated dumps keep
  // their historical shape).
  mm::MmJoinOptions direct;
  direct.scatter = ScatterMode::kDirect;
  auto rd = mm::MmGrace(w, direct);
  ASSERT_TRUE(rd.ok()) << rd.status().ToString();
  obs::MetricsRegistry reg2;
  rd->ExportMetrics(&reg2);
  for (const auto& [name, counter] : reg2.counters()) {
    EXPECT_EQ(name.rfind("join.scatter.", 0), std::string::npos) << name;
    EXPECT_EQ(name.rfind("join.numa.", 0), std::string::npos) << name;
  }
}

// The density hint: a pass whose morsels cannot fill even one slab per
// destination must bypass staging (per-tuple forwarding) instead of
// draining every slab partial. At K=64 the Grace pass-1 bucket scatter
// spreads its |RP_{i,j}| = 128-tuple morsels to 2 tuples/bucket — below
// any slab capacity — so only pass 0 stages; at K=2 the same morsels put
// 64 tuples on each bucket and pass 1 stages too. Results must be
// identical either way.
TEST_F(ScatterJoinIdentityTest, SparseMorselsBypassStaging) {
  const mm::MmWorkload w = Build(0.0);
  uint64_t staged[2];
  int idx = 0;
  for (uint32_t k_buckets : {64u, 2u}) {
    mm::MmJoinOptions opt;
    opt.scatter = ScatterMode::kBuffered;
    opt.k_buckets = k_buckets;
    auto r = mm::MmGrace(w, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->verified) << "k_buckets=" << k_buckets;
    EXPECT_EQ(r->output_count, w.expected_output_count);
    EXPECT_EQ(r->output_checksum, w.expected_checksum);
    EXPECT_GT(r->run.scatter_tuples, 0u);
    staged[idx++] = r->run.scatter_tuples;
  }
  // Bypassed pass-1 tuples are forwarded, not staged, so the sparse run
  // routes strictly fewer tuples through the slabs than the dense one.
  EXPECT_LT(staged[0], staged[1]);
}

// ---------------------------------------------------------------------------
// Per-pass fault accounting: with RUSAGE_THREAD the per-pass deltas must
// sum exactly to the total (the process-wide RUSAGE_SELF counter made
// concurrent passes double-count).
// ---------------------------------------------------------------------------

TEST_F(ScatterJoinIdentityTest, PassFaultsSumToTotalFaults) {
  const mm::MmWorkload w = Build(1.1);
  for (MmJoinFn join : kJoins) {
    for (uint32_t workers : {1u, 8u}) {
      mm::MmJoinOptions opt;
      opt.max_threads = workers;
      opt.schedule = Schedule::kStealing;
      auto r = join(w, opt);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      uint64_t sum = 0;
      for (const auto& pass : r->run.passes) sum += pass.faults;
      EXPECT_EQ(sum, r->run.faults) << "workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace mmjoin::exec
