#include "obs/metrics.h"

#include <string>

#include "gtest/gtest.h"
#include "obs/json.h"

namespace mmjoin::obs {
namespace {

TEST(CounterTest, IncAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, Moments) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.Record(2.0);
  h.Record(6.0);
  h.Record(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  Histogram h;
  h.Record(0.5);   // bucket 0: <= 1
  h.Record(1.0);   // bucket 0
  h.Record(2.0);   // (1, 2]
  h.Record(3.0);   // (2, 4]
  h.Record(4.0);   // (2, 4]
  h.Record(100.0); // (64, 128]

  const auto buckets = h.Buckets();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_DOUBLE_EQ(buckets[0].first, 1.0);
  EXPECT_EQ(buckets[0].second, 2u);
  EXPECT_DOUBLE_EQ(buckets[1].first, 2.0);
  EXPECT_EQ(buckets[1].second, 1u);
  EXPECT_DOUBLE_EQ(buckets[2].first, 4.0);
  EXPECT_EQ(buckets[2].second, 2u);
  EXPECT_DOUBLE_EQ(buckets[3].first, 128.0);
  EXPECT_EQ(buckets[3].second, 1u);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Record(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  ASSERT_EQ(h.Buckets().size(), 1u);
  EXPECT_DOUBLE_EQ(h.Buckets()[0].first, 1.0);
}

TEST(HistogramTest, Reset) {
  Histogram h;
  h.Record(7.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_TRUE(h.Buckets().empty());
}

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("vm.faults");
  a.Inc(3);
  EXPECT_EQ(registry.counter("vm.faults").value(), 3u);
  EXPECT_EQ(&registry.counter("vm.faults"), &a);
  EXPECT_EQ(registry.counter_count(), 1u);

  Histogram& h = registry.histogram("join.elapsed_ms");
  h.Record(10.0);
  EXPECT_EQ(&registry.histogram("join.elapsed_ms"), &h);
  EXPECT_EQ(registry.histogram_count(), 1u);
}

TEST(MetricsRegistryTest, CountersAndHistogramsAreSeparateNamespaces) {
  MetricsRegistry registry;
  registry.counter("x").Inc();
  registry.histogram("x").Record(1.0);
  EXPECT_EQ(registry.counter_count(), 1u);
  EXPECT_EQ(registry.histogram_count(), 1u);
}

TEST(MetricsRegistryTest, ResetAllKeepsNames) {
  MetricsRegistry registry;
  registry.counter("a").Inc(5);
  registry.histogram("b").Record(2.0);
  registry.ResetAll();
  EXPECT_EQ(registry.counter_count(), 1u);
  EXPECT_EQ(registry.histogram_count(), 1u);
  EXPECT_EQ(registry.counter("a").value(), 0u);
  EXPECT_EQ(registry.histogram("b").count(), 0u);
}

TEST(MetricsRegistryTest, ToJsonParses) {
  MetricsRegistry registry;
  registry.counter("disk.0.reads").Inc(17);
  registry.histogram("disk.0.read_ms").Record(1.5);
  registry.histogram("disk.0.read_ms").Record(3.0);

  auto doc = JsonParse(registry.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("disk.0.reads")->number, 17.0);

  const JsonValue* histograms = doc->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* h = histograms->Find("disk.0.read_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->Find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(h->Find("sum")->number, 4.5);
  EXPECT_DOUBLE_EQ(h->Find("min")->number, 1.5);
  EXPECT_DOUBLE_EQ(h->Find("max")->number, 3.0);
  const JsonValue* buckets = h->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  ASSERT_EQ(buckets->items.size(), 2u);  // (1,2] and (2,4]
  EXPECT_DOUBLE_EQ(buckets->items[0].items[0].number, 2.0);
  EXPECT_DOUBLE_EQ(buckets->items[0].items[1].number, 1.0);
}

TEST(MetricsRegistryTest, EmptyRegistryToJson) {
  MetricsRegistry registry;
  auto doc = JsonParse(registry.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->Find("counters")->is_object());
  EXPECT_TRUE(doc->Find("histograms")->is_object());
}

}  // namespace
}  // namespace mmjoin::obs
