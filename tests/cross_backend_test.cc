// Cross-backend equivalence: the unified drivers (exec/join_drivers.h)
// instantiated over the simulated backend (join::JoinExecution) and the
// real-mmap backend (exec::RealBackend) must produce the IDENTICAL join —
// same output_count, same order-independent output_checksum — for every
// algorithm, because the workload generators are seed-deterministic and
// the algorithm logic is literally the same template.
//
// This is the one-harness sim-vs-real cross-validation the backend seam
// exists to enable.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "join/grace.h"
#include "join/hybrid_hash.h"
#include "join/index_nl.h"
#include "join/join_common.h"
#include "join/mpsm.h"
#include "join/nested_loops.h"
#include "join/sort_merge.h"
#include "mmap/mm_relation.h"
#include "mmap/mmap_join.h"
#include "mmap/segment_manager.h"
#include "rel/generator.h"
#include "sim/sim_env.h"

namespace mmjoin {
namespace {

struct AlgoCase {
  const char* name;
  join::Algorithm algorithm;
};

class CrossBackendTest : public ::testing::TestWithParam<AlgoCase> {
 protected:
  void SetUp() override {
    // The parameterized test name contains '/', which cannot appear in a
    // directory name — flatten it.
    std::string test_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : test_name) {
      if (c == '/') c = '_';
    }
    dir_ = ::testing::TempDir() + "xbackend_" + std::to_string(::getpid()) +
           "_" + test_name;
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  static rel::RelationConfig Shape(uint64_t n, uint32_t d, double theta,
                                   uint64_t seed) {
    rel::RelationConfig rc;
    rc.r_objects = rc.s_objects = n;
    rc.num_partitions = d;
    rc.zipf_theta = theta;
    rc.seed = seed;
    return rc;
  }

  StatusOr<join::JoinRunResult> RunSim(const rel::RelationConfig& rc,
                                       const join::JoinParams& params) {
    sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
    mc.num_disks = rc.num_partitions;  // one partition per disk, as the paper
    sim::SimEnv env(mc);
    auto workload = rel::BuildWorkload(&env, rc);
    if (!workload.ok()) return workload.status();
    switch (GetParam().algorithm) {
      case join::Algorithm::kNestedLoops:
        return join::RunNestedLoops(&env, *workload, params);
      case join::Algorithm::kSortMerge:
        return join::RunSortMerge(&env, *workload, params);
      case join::Algorithm::kGrace:
        return join::RunGrace(&env, *workload, params);
      case join::Algorithm::kHybridHash:
        return join::RunHybridHash(&env, *workload, params);
      case join::Algorithm::kIndexNestedLoops:
        return join::RunIndexNestedLoops(&env, *workload, params);
      case join::Algorithm::kMpsm:
        return join::RunMpsm(&env, *workload, params);
    }
    return Status::InvalidArgument("bad algorithm");
  }

  StatusOr<mm::MmJoinResult> RunReal(const rel::RelationConfig& rc,
                                     const mm::MmJoinOptions& options,
                                     const std::string& prefix) {
    auto workload = mm::BuildMmWorkload(mgr_.get(), prefix, rc);
    if (!workload.ok()) return workload.status();
    switch (GetParam().algorithm) {
      case join::Algorithm::kNestedLoops:
        return mm::MmNestedLoops(*workload, options);
      case join::Algorithm::kSortMerge:
        return mm::MmSortMerge(*workload, options);
      case join::Algorithm::kGrace:
        return mm::MmGrace(*workload, options);
      case join::Algorithm::kHybridHash:
        return mm::MmHybridHash(*workload, options);
      case join::Algorithm::kIndexNestedLoops:
        return mm::MmIndexNestedLoops(*workload, options);
      case join::Algorithm::kMpsm:
        return mm::MmMpsm(*workload, options);
    }
    return Status::InvalidArgument("bad algorithm");
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
};

TEST_P(CrossBackendTest, SameSeedSameJoin) {
  const rel::RelationConfig rc = Shape(8192, 4, 0.5, 20260806);

  join::JoinParams params;
  params.m_rproc_bytes =
      static_cast<uint64_t>(0.2 * rc.r_objects * sizeof(rel::RObject));
  params.m_sproc_bytes = params.m_rproc_bytes;

  auto sim_result = RunSim(rc, params);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  ASSERT_TRUE(sim_result->verified);

  mm::MmJoinOptions options;
  options.m_rproc_bytes = params.m_rproc_bytes;
  auto real_result = RunReal(rc, options, "seed");
  ASSERT_TRUE(real_result.ok()) << real_result.status().ToString();
  ASSERT_TRUE(real_result->verified);

  EXPECT_EQ(sim_result->output_count, real_result->output_count);
  EXPECT_EQ(sim_result->output_checksum, real_result->output_checksum);
}

TEST_P(CrossBackendTest, SkewedWorkloadStillMatches) {
  const rel::RelationConfig rc = Shape(12000, 3, 0.9, 777);
  auto sim_result = RunSim(rc, join::JoinParams{});
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();

  auto real_result = RunReal(rc, mm::MmJoinOptions{}, "skew");
  ASSERT_TRUE(real_result.ok()) << real_result.status().ToString();

  EXPECT_EQ(sim_result->output_count, real_result->output_count);
  EXPECT_EQ(sim_result->output_checksum, real_result->output_checksum);
  EXPECT_TRUE(sim_result->verified && real_result->verified);
}

TEST_P(CrossBackendTest, PassStructureMatchesAcrossBackends) {
  // Not just the output: the drivers are one template, so both backends
  // walk the same pass boundaries in the same order.
  const rel::RelationConfig rc = Shape(4096, 2, 0.0, 42);
  auto sim_result = RunSim(rc, join::JoinParams{});
  ASSERT_TRUE(sim_result.ok());
  auto real_result = RunReal(rc, mm::MmJoinOptions{}, "passes");
  ASSERT_TRUE(real_result.ok());

  ASSERT_EQ(sim_result->passes.size(), real_result->run.passes.size());
  for (size_t p = 0; p < sim_result->passes.size(); ++p) {
    EXPECT_EQ(sim_result->passes[p].label, real_result->run.passes[p].label);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CrossBackendTest,
    ::testing::Values(AlgoCase{"nested_loops", join::Algorithm::kNestedLoops},
                      AlgoCase{"sort_merge", join::Algorithm::kSortMerge},
                      AlgoCase{"grace", join::Algorithm::kGrace},
                      AlgoCase{"hybrid_hash", join::Algorithm::kHybridHash},
                      AlgoCase{"index_nl",
                               join::Algorithm::kIndexNestedLoops},
                      AlgoCase{"mpsm", join::Algorithm::kMpsm}),
    [](const ::testing::TestParamInfo<AlgoCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace mmjoin
