#include "obs/trace.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "obs/json.h"

namespace mmjoin::obs {
namespace {

// Finds the traceEvents array in a parsed export.
const JsonValue* Events(const JsonValue& doc) {
  const JsonValue* events = doc.Find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events && events->is_array());
  return events;
}

TEST(TraceRecorderTest, CompleteEventScalesToMicroseconds) {
  TraceRecorder trace;
  trace.Complete(0, 1, "pass0", "pass", /*start_ms=*/1.5, /*dur_ms=*/2.25);
  ASSERT_EQ(trace.size(), 1u);

  auto doc = JsonParse(trace.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = Events(*doc);
  ASSERT_EQ(events->items.size(), 1u);
  const JsonValue& e = events->items[0];
  EXPECT_EQ(e.Find("ph")->str, "X");
  EXPECT_DOUBLE_EQ(e.Find("ts")->number, 1500.0);
  EXPECT_DOUBLE_EQ(e.Find("dur")->number, 2250.0);
  EXPECT_EQ(e.Find("name")->str, "pass0");
  EXPECT_EQ(e.Find("cat")->str, "pass");
}

TEST(TraceRecorderTest, InstantEventHasThreadScope) {
  TraceRecorder trace;
  trace.Instant(2, 1, "fault", "vm", 10.0,
                {Arg("page", uint64_t{7}), Arg("cache", "Sproc 2")});
  auto doc = JsonParse(trace.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& e = Events(*doc)->items[0];
  EXPECT_EQ(e.Find("ph")->str, "i");
  EXPECT_EQ(e.Find("s")->str, "t");
  EXPECT_DOUBLE_EQ(e.Find("pid")->number, 2.0);
  EXPECT_DOUBLE_EQ(e.Find("tid")->number, 1.0);
  const JsonValue* args = e.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->Find("page")->number, 7.0);
  EXPECT_EQ(args->Find("cache")->str, "Sproc 2");
}

TEST(TraceRecorderTest, SpanNestingTracksOpenCount) {
  TraceRecorder trace;
  EXPECT_EQ(trace.open_spans(), 0u);
  trace.BeginSpan(0, 1, "outer", "test", 0.0);
  trace.BeginSpan(0, 1, "inner", "test", 1.0);
  trace.BeginSpan(1, 2, "other-track", "test", 2.0);
  EXPECT_EQ(trace.open_spans(), 3u);
  trace.EndSpan(0, 1, 3.0);
  EXPECT_EQ(trace.open_spans(), 2u);
  trace.EndSpan(0, 1, 4.0);
  trace.EndSpan(1, 2, 5.0);
  EXPECT_EQ(trace.open_spans(), 0u);
  // B/B/B/E/E/E — six events in all.
  EXPECT_EQ(trace.size(), 6u);
}

TEST(TraceRecorderTest, UnmatchedEndSpanIsIgnored) {
  TraceRecorder trace;
  trace.EndSpan(0, 1, 1.0);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.open_spans(), 0u);
}

TEST(TraceRecorderTest, CountEventsExcludesMetadata) {
  TraceRecorder trace;
  trace.SetProcessName(0, "disk 0");
  trace.SetThreadName(0, 1, "Rproc 0");
  trace.Instant(0, 1, "fault", "vm", 1.0);
  trace.Instant(0, 1, "fault", "vm", 2.0);
  trace.Complete(0, 1, "fault", "vm", 3.0, 1.0);  // name collision on 'X'
  EXPECT_EQ(trace.CountEvents("fault"), 3u);
  EXPECT_EQ(trace.CountEvents("process_name"), 0u);
  EXPECT_EQ(trace.CountEvents("thread_name"), 0u);
  EXPECT_EQ(trace.CountEvents("no-such-event"), 0u);
}

TEST(TraceRecorderTest, MetadataEventsNameTracks) {
  TraceRecorder trace;
  trace.SetProcessName(3, "disk 3");
  trace.SetThreadName(3, 2, "Sproc 3");
  auto doc = JsonParse(trace.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = Events(*doc);
  ASSERT_EQ(events->items.size(), 2u);
  const JsonValue& p = events->items[0];
  EXPECT_EQ(p.Find("ph")->str, "M");
  EXPECT_EQ(p.Find("name")->str, "process_name");
  EXPECT_EQ(p.Find("args")->Find("name")->str, "disk 3");
  const JsonValue& t = events->items[1];
  EXPECT_EQ(t.Find("name")->str, "thread_name");
  EXPECT_DOUBLE_EQ(t.Find("tid")->number, 2.0);
  EXPECT_EQ(t.Find("args")->Find("name")->str, "Sproc 3");
}

TEST(TraceRecorderTest, JsonRoundTripWithEscapedStrings) {
  TraceRecorder trace;
  const std::string nasty = "quote\" backslash\\ newline\n tab\t bell\x07";
  trace.Instant(0, 1, nasty, "cat\"egory", 0.5,
                {Arg("detail", std::string_view(nasty))});
  auto doc = JsonParse(trace.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& e = Events(*doc)->items[0];
  EXPECT_EQ(e.Find("name")->str, nasty);
  EXPECT_EQ(e.Find("cat")->str, "cat\"egory");
  EXPECT_EQ(e.Find("args")->Find("detail")->str, nasty);
}

TEST(TraceRecorderTest, ExportHasDisplayTimeUnit) {
  TraceRecorder trace;
  auto doc = JsonParse(trace.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* unit = doc->Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str, "ms");
  EXPECT_EQ(Events(*doc)->items.size(), 0u);
}

TEST(TraceRecorderTest, CounterEventCarriesSeries) {
  TraceRecorder trace;
  trace.Counter(1, "resident", 4.0, {Arg("pages", uint64_t{128})});
  auto doc = JsonParse(trace.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& e = Events(*doc)->items[0];
  EXPECT_EQ(e.Find("ph")->str, "C");
  EXPECT_DOUBLE_EQ(e.Find("args")->Find("pages")->number, 128.0);
}

TEST(TraceRecorderTest, ClearEmptiesRecorder) {
  TraceRecorder trace;
  trace.Instant(0, 1, "fault", "vm", 1.0);
  trace.BeginSpan(0, 1, "open", "test", 2.0);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.open_spans(), 0u);
}

TEST(TraceRecorderTest, WriteFileRoundTrips) {
  TraceRecorder trace;
  trace.Complete(0, 1, "pass0", "pass", 0.0, 1.0);
  const std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(trace.WriteFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, trace.ToJson());
  EXPECT_TRUE(JsonParse(content).ok());
}

}  // namespace
}  // namespace mmjoin::obs
