// Properties of the measured dttr/dttw curves (the Fig. 1a methodology):
// both curves increase with band size, writes are cheaper than reads for
// random bands, and band size 1 approaches the sequential cost.
#include "disk/band_measure.h"

#include <gtest/gtest.h>

namespace mmjoin::disk {
namespace {

BandMeasureOptions FastOptions() {
  BandMeasureOptions o;
  o.area_blocks = 16000;
  o.accesses_per_band = 32;
  return o;
}

TEST(BandMeasureTest, ReadCurveIsMonotoneNondecreasing) {
  const auto curve = MeasureReadCurve(DiskGeometry{}, FastOptions());
  ASSERT_GT(curve.size(), 3u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].ms_per_block, curve[i - 1].ms_per_block * 0.98)
        << "band " << curve[i].band_blocks;
  }
}

TEST(BandMeasureTest, WriteCurveIsMonotoneNondecreasing) {
  const auto curve = MeasureWriteCurve(DiskGeometry{}, FastOptions());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].ms_per_block, curve[i - 1].ms_per_block * 0.98);
  }
}

TEST(BandMeasureTest, WritesCheaperThanReadsInRandomBands) {
  const DiskGeometry g;
  const auto reads = MeasureReadCurve(g, FastOptions());
  const auto writes = MeasureWriteCurve(g, FastOptions());
  ASSERT_EQ(reads.size(), writes.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    if (reads[i].band_blocks == 1) continue;  // sequential: comparable
    EXPECT_LT(writes[i].ms_per_block, reads[i].ms_per_block)
        << "band " << reads[i].band_blocks;
  }
}

TEST(BandMeasureTest, SequentialBandMatchesStreamingCost) {
  const DiskGeometry g;
  const auto reads = MeasureReadCurve(g, FastOptions());
  ASSERT_EQ(reads.front().band_blocks, 1u);
  // Sequential reads cost overhead + transfer (plus one initial seek,
  // amortized away over the area).
  EXPECT_NEAR(reads.front().ms_per_block, g.overhead_ms + g.transfer_ms,
              0.2);
}

TEST(BandMeasureTest, MagnitudesMatchFig1a) {
  // The paper's Fig 1(a): ~6 ms sequential, ~18-22 ms for random reads in a
  // 12800-block band; writes peak lower (~12-14 ms).
  const auto reads = MeasureReadCurve(DiskGeometry{}, FastOptions());
  const auto writes = MeasureWriteCurve(DiskGeometry{}, FastOptions());
  const auto& seq = reads.front();
  const auto& wide_r = reads.back();
  const auto& wide_w = writes.back();
  EXPECT_GT(seq.ms_per_block, 3.0);
  EXPECT_LT(seq.ms_per_block, 9.0);
  EXPECT_GT(wide_r.ms_per_block, 14.0);
  EXPECT_LT(wide_r.ms_per_block, 26.0);
  EXPECT_GT(wide_w.ms_per_block, 8.0);
  EXPECT_LT(wide_w.ms_per_block, 18.0);
}

TEST(BandMeasureTest, DeterministicForSeed) {
  const auto a = MeasureReadCurve(DiskGeometry{}, FastOptions());
  const auto b = MeasureReadCurve(DiskGeometry{}, FastOptions());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].ms_per_block, b[i].ms_per_block);
  }
}

TEST(BandMeasureTest, CustomBandList) {
  BandMeasureOptions o = FastOptions();
  o.band_sizes = {1, 64, 256};
  const auto curve = MeasureReadCurve(DiskGeometry{}, o);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_EQ(curve[0].band_blocks, 1u);
  EXPECT_EQ(curve[2].band_blocks, 256u);
}

}  // namespace
}  // namespace mmjoin::disk
