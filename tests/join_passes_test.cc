// Per-pass accounting: labels, ordering, and the invariant that pass
// durations partition the total elapsed time.
#include <gtest/gtest.h>

#include <numeric>

#include "join/grace.h"
#include "join/nested_loops.h"
#include "join/sort_merge.h"
#include "rel/generator.h"

namespace mmjoin::join {
namespace {

JoinRunResult RunFor(Algorithm a) {
  sim::SimEnv env(sim::MachineConfig::SequentSymmetry1996());
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 8192;
  auto w = rel::BuildWorkload(&env, rc);
  EXPECT_TRUE(w.ok());
  JoinParams p;
  p.m_rproc_bytes = 256 << 10;
  p.m_sproc_bytes = 256 << 10;
  StatusOr<JoinRunResult> r = [&] {
    switch (a) {
      case Algorithm::kNestedLoops:
        return RunNestedLoops(&env, *w, p);
      case Algorithm::kSortMerge:
        return RunSortMerge(&env, *w, p);
      default:
        return RunGrace(&env, *w, p);
    }
  }();
  EXPECT_TRUE(r.ok());
  return *r;
}

TEST(JoinPassesTest, NestedLoopsLabels) {
  const JoinRunResult r = RunFor(Algorithm::kNestedLoops);
  ASSERT_EQ(r.passes.size(), 3u);
  EXPECT_EQ(r.passes[0].label, "setup");
  EXPECT_EQ(r.passes[1].label, "pass0");
  EXPECT_EQ(r.passes[2].label, "pass1");
}

TEST(JoinPassesTest, SortMergeLabels) {
  const JoinRunResult r = RunFor(Algorithm::kSortMerge);
  ASSERT_EQ(r.passes.size(), 4u);
  EXPECT_EQ(r.passes[0].label, "setup");
  EXPECT_EQ(r.passes[3].label, "sort+merge+join");
}

TEST(JoinPassesTest, GraceLabels) {
  const JoinRunResult r = RunFor(Algorithm::kGrace);
  ASSERT_EQ(r.passes.size(), 4u);
  EXPECT_EQ(r.passes[3].label, "bucket-join");
}

TEST(JoinPassesTest, PassesPartitionElapsedTime) {
  for (auto a :
       {Algorithm::kNestedLoops, Algorithm::kSortMerge, Algorithm::kGrace}) {
    const JoinRunResult r = RunFor(a);
    double sum = 0;
    for (const auto& pass : r.passes) {
      EXPECT_GE(pass.elapsed_ms, 0.0) << pass.label;
      sum += pass.elapsed_ms;
    }
    EXPECT_NEAR(sum, r.elapsed_ms, 1e-6 * r.elapsed_ms)
        << AlgorithmName(a);
  }
}

TEST(JoinPassesTest, SetupPassHasNoFaults) {
  for (auto a :
       {Algorithm::kNestedLoops, Algorithm::kSortMerge, Algorithm::kGrace}) {
    const JoinRunResult r = RunFor(a);
    EXPECT_EQ(r.passes[0].faults, 0u) << AlgorithmName(a);
    EXPECT_GT(r.passes[0].elapsed_ms, 0.0);
  }
}

TEST(JoinPassesTest, FaultsAttributedToWorkPasses) {
  for (auto a :
       {Algorithm::kNestedLoops, Algorithm::kSortMerge, Algorithm::kGrace}) {
    const JoinRunResult r = RunFor(a);
    uint64_t sum = 0;
    for (const auto& pass : r.passes) sum += pass.faults;
    EXPECT_EQ(sum, r.faults) << AlgorithmName(a);
    // Pass 0 reads R_i: it must fault.
    EXPECT_GT(r.passes[1].faults, 0u) << AlgorithmName(a);
  }
}

}  // namespace
}  // namespace mmjoin::join
