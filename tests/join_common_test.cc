// Unit tests for the shared execution core: RP sub-partition layout, the
// G-buffered request protocol, setup charging, and result assembly.
#include "join/join_common.h"

#include <gtest/gtest.h>

#include "rel/generator.h"

namespace mmjoin::join {
namespace {

struct Fixture {
  Fixture()
      : env(sim::MachineConfig::SequentSymmetry1996()) {
    rel::RelationConfig rc;
    rc.r_objects = rc.s_objects = 4096;
    auto built = rel::BuildWorkload(&env, rc);
    EXPECT_TRUE(built.ok());
    workload = std::move(built).value();
  }

  sim::SimEnv env;
  rel::Workload workload;
};

TEST(JoinExecutionTest, RpLayoutIsContiguousAndExact) {
  Fixture f;
  JoinParams p;
  JoinExecution ex(&f.env, f.workload, p);
  ASSERT_TRUE(ex.CreateRpSegments().ok());
  for (uint32_t i = 0; i < 4; ++i) {
    uint64_t expected_off = 0;
    for (uint32_t j = 0; j < 4; ++j) {
      EXPECT_EQ(ex.RpSubOffset(i, j), expected_off) << i << "," << j;
      if (j != i) {
        EXPECT_EQ(ex.RpSubCount(i, j), f.workload.counts[i][j]);
        expected_off += f.workload.counts[i][j] * sizeof(rel::RObject);
      }
    }
    // Total RP bytes round up to whole pages.
    const uint64_t pages = ex.RpPages(i);
    EXPECT_GE(pages * 4096, expected_off);
    EXPECT_LT((pages - 1) * 4096, std::max<uint64_t>(expected_off, 1));
  }
}

TEST(JoinExecutionTest, AppendToRpMovesBytes) {
  Fixture f;
  JoinParams p;
  JoinExecution ex(&f.env, f.workload, p);
  ASSERT_TRUE(ex.CreateRpSegments().ok());
  rel::RObject obj;
  obj.id = 777;
  obj.sptr = rel::SPtr{1, 5}.Pack();
  ex.AppendToRp(0, 1, obj);
  const auto* stored = reinterpret_cast<const rel::RObject*>(
      f.env.segment(ex.rp_seg(0)).raw() + ex.RpSubOffset(0, 1));
  EXPECT_EQ(stored->id, 777u);
  // The copy was charged as a private->private move.
  EXPECT_GT(ex.rproc(0).stats().cpu_ms, 0.0);
}

TEST(JoinExecutionTest, RequestSBatchesThroughGBuffer) {
  Fixture f;
  JoinParams p;
  p.g_bytes = 3 * (sizeof(rel::RObject) + 8 + sizeof(rel::SObject));
  JoinExecution ex(&f.env, f.workload, p);
  // Two requests: below capacity, nothing serviced yet.
  const auto* r_objs = reinterpret_cast<const rel::RObject*>(
      f.env.segment(f.workload.r_segs[0]).raw());
  ex.RequestS(0, r_objs[0].id, r_objs[0].sptr);
  ex.RequestS(0, r_objs[1].id, r_objs[1].sptr);
  EXPECT_EQ(ex.out_count(0), 0u);
  EXPECT_EQ(ex.rproc(0).stats().context_switches, 0u);
  // Third fills the buffer: one exchange, three joins.
  ex.RequestS(0, r_objs[2].id, r_objs[2].sptr);
  EXPECT_EQ(ex.out_count(0), 3u);
  EXPECT_EQ(ex.rproc(0).stats().context_switches, 2u);
  // Flush drains a partial batch.
  ex.RequestS(0, r_objs[3].id, r_objs[3].sptr);
  ex.FlushSRequests(0);
  EXPECT_EQ(ex.out_count(0), 4u);
  EXPECT_EQ(ex.rproc(0).stats().context_switches, 4u);
}

TEST(JoinExecutionTest, ChargeSetupAllSerializesOverD) {
  Fixture f;
  JoinParams p;
  JoinExecution ex(&f.env, f.workload, p);
  ex.ChargeSetupAll(10.0);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(ex.rproc(i).stats().setup_ms, 40.0);  // x D
  }
}

TEST(JoinExecutionTest, SyncClocksBarriers) {
  Fixture f;
  JoinParams p;
  JoinExecution ex(&f.env, f.workload, p);
  ex.rproc(0).ChargeCpu(100.0);
  ex.rproc(2).ChargeCpu(40.0);
  ex.SyncClocks();
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(ex.rproc(i).clock_ms(), 100.0);
  }
  // The barrier time is accounted as wait.
  EXPECT_DOUBLE_EQ(ex.rproc(1).stats().wait_ms, 100.0);
  EXPECT_DOUBLE_EQ(ex.rproc(2).stats().wait_ms, 60.0);
}

TEST(JoinExecutionTest, FinishAggregatesAndVerifies) {
  Fixture f;
  JoinParams p;
  JoinExecution ex(&f.env, f.workload, p);
  // Push the complete R through the request path: output = full join.
  for (uint32_t i = 0; i < 4; ++i) {
    const auto* r_objs = reinterpret_cast<const rel::RObject*>(
        f.env.segment(f.workload.r_segs[i]).raw());
    for (uint64_t k = 0; k < f.workload.r_count[i]; ++k) {
      ex.RequestS(i, r_objs[k].id, r_objs[k].sptr);
    }
    ex.FlushSRequests(i);
  }
  const JoinRunResult result = ex.Finish();
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.output_count, f.workload.expected_output_count);
  EXPECT_GT(result.elapsed_ms, 0.0);
}

TEST(JoinExecutionTest, PartialOutputFailsVerification) {
  Fixture f;
  JoinParams p;
  JoinExecution ex(&f.env, f.workload, p);
  const auto* r_objs = reinterpret_cast<const rel::RObject*>(
      f.env.segment(f.workload.r_segs[0]).raw());
  ex.RequestS(0, r_objs[0].id, r_objs[0].sptr);
  ex.FlushSRequests(0);
  const JoinRunResult result = ex.Finish();
  EXPECT_FALSE(result.verified);
}

TEST(AlgorithmNameTest, Names) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kNestedLoops), "nested-loops");
  EXPECT_STREQ(AlgorithmName(Algorithm::kSortMerge), "sort-merge");
  EXPECT_STREQ(AlgorithmName(Algorithm::kGrace), "grace");
}

}  // namespace
}  // namespace mmjoin::join
