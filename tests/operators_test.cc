// Operator-layer tests (exec/op/): per-stage behavior of the push-based
// plan operators, the plan validator and registry, and the identity
// matrix the refactor is accountable to — every refactored join driver
// and every built-in plan must produce bit-identical counts/checksums on
// the simulated and real backends under both schedules.
//
// The per-stage tests drive operators through full plan runs with custom
// PlanSpecs rather than poking Push() directly: the executor IS the
// contract (per-slot state sized by Open, serial merge at Close), and a
// custom spec reaches every edge — empty input, 0/1/many groups, 0%/100%
// filter selectivity — on both backends with the serial reference
// evaluator as oracle.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "join/grace.h"
#include "join/hybrid_hash.h"
#include "join/join_common.h"
#include "join/nested_loops.h"
#include "join/sort_merge.h"
#include "mmap/mm_relation.h"
#include "mmap/mmap_join.h"
#include "mmap/segment_manager.h"
#include "rel/generator.h"
#include "sim/sim_env.h"

namespace mmjoin {
namespace {

using exec::op::AggOp;
using exec::op::AggSpec;
using exec::op::Column;
using exec::op::ColumnValue;
using exec::op::GroupsChecksum;
using exec::op::PlanRunResult;
using exec::op::PlanSpec;
using exec::op::Predicate;

rel::RelationConfig Shape(uint64_t n, uint32_t d, double theta,
                          uint64_t seed) {
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = n;
  rc.num_partitions = d;
  rc.zipf_theta = theta;
  rc.seed = seed;
  return rc;
}

// ---------------------------------------------------------------------------
// Pure pieces: pseudo-columns, validation, registry, checksum convention
// ---------------------------------------------------------------------------

TEST(ColumnsTest, PseudoColumnRangesAndDeterminism) {
  for (uint64_t r_id = 0; r_id < 5000; ++r_id) {
    const uint64_t qty = ColumnValue(Column::kQty, r_id, 0);
    const uint64_t price = ColumnValue(Column::kPrice, r_id, 0);
    const uint64_t disc = ColumnValue(Column::kDiscount, r_id, 0);
    const uint64_t date = ColumnValue(Column::kDate, r_id, 0);
    const uint64_t flag = ColumnValue(Column::kFlag, r_id, 0);
    EXPECT_GE(qty, 1u);
    EXPECT_LE(qty, 50u);
    EXPECT_GE(price, 10000u);
    EXPECT_LE(price, 99999u);
    EXPECT_LE(disc, 10u);
    EXPECT_LE(date, 2465u);
    EXPECT_LE(flag, 2u);
    // Same row, same value — the columns are pure functions of identity.
    EXPECT_EQ(qty, ColumnValue(Column::kQty, r_id, 0));
  }
  EXPECT_EQ(ColumnValue(Column::kRId, 77, 0), 77u);
  EXPECT_EQ(ColumnValue(Column::kSKey, 0, 1234), 1234u);
  EXPECT_EQ(ColumnValue(Column::kSPriority, 0, 1234), 1234u % 5);
}

TEST(ColumnsTest, SColumnsAreFlagged) {
  EXPECT_TRUE(exec::op::ColumnNeedsS(Column::kSKey));
  EXPECT_TRUE(exec::op::ColumnNeedsS(Column::kSPriority));
  EXPECT_FALSE(exec::op::ColumnNeedsS(Column::kQty));
  EXPECT_FALSE(exec::op::ColumnNeedsS(Column::kRId));
}

TEST(PlanSpecTest, ValidateRejectsSColumnsWithoutProbe) {
  PlanSpec spec;
  spec.name = "bad";
  spec.filters.push_back(Predicate{Column::kSPriority, 0, 3});
  EXPECT_FALSE(exec::op::ValidatePlan(spec).ok());
  spec.probe_s = true;
  spec.aggs.push_back(AggSpec{AggOp::kCount, Column::kRId, Column::kRId});
  EXPECT_TRUE(exec::op::ValidatePlan(spec).ok());
}

TEST(PlanSpecTest, ValidateRejectsGroupingWithoutAggregates) {
  PlanSpec spec;
  spec.name = "bad";
  spec.group_by = Column::kFlag;
  EXPECT_FALSE(exec::op::ValidatePlan(spec).ok());
  spec.aggs.push_back(AggSpec{AggOp::kCount, Column::kRId, Column::kRId});
  EXPECT_TRUE(exec::op::ValidatePlan(spec).ok());
}

TEST(PlanSpecTest, BuiltinRegistryIsComplete) {
  for (const char* name : exec::op::kPlanNames) {
    const PlanSpec* spec = exec::op::FindPlan(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->name, name);
    EXPECT_TRUE(exec::op::ValidatePlan(*spec).ok()) << name;
  }
  EXPECT_EQ(exec::op::FindPlan("nope"), nullptr);
  EXPECT_EQ(exec::op::PlanDescriptions().size(),
            std::size(exec::op::kPlanNames));
}

TEST(PlanSpecTest, GroupsChecksumIsOrderAndContentSensitive) {
  std::vector<exec::op::GroupRow> a{{1, {10, 20}}, {2, {30, 40}}};
  std::vector<exec::op::GroupRow> mutated = a;
  mutated[1].aggs[0] = 31;
  EXPECT_EQ(GroupsChecksum({}), 0u);
  EXPECT_NE(GroupsChecksum(a), GroupsChecksum(mutated));
  EXPECT_EQ(GroupsChecksum(a), GroupsChecksum(a));
}

// ---------------------------------------------------------------------------
// Per-stage behavior through full plan runs (sim + real, reference oracle)
// ---------------------------------------------------------------------------

class OperatorStageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string test_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir_ = ::testing::TempDir() + "opstage_" + std::to_string(::getpid()) +
           "_" + test_name;
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  // Runs `spec` on the costed simulator; asserts the oracle check passed.
  PlanRunResult RunSim(const rel::RelationConfig& rc, const PlanSpec& spec) {
    sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
    mc.num_disks = rc.num_partitions;
    sim::SimEnv env(mc);
    auto workload = rel::BuildWorkload(&env, rc);
    EXPECT_TRUE(workload.ok()) << workload.status().ToString();
    bool verified = false;
    auto result =
        exec::op::RunPlanSim(&env, *workload, join::JoinParams{}, spec,
                             &verified);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(verified) << spec.name;
    return *result;
  }

  // Runs `spec` on the real backend; asserts the oracle check passed.
  PlanRunResult RunReal(const rel::RelationConfig& rc, const PlanSpec& spec,
                        const std::string& prefix,
                        const mm::MmJoinOptions& options = {}) {
    auto workload = mm::BuildMmWorkload(mgr_.get(), prefix, rc);
    EXPECT_TRUE(workload.ok()) << workload.status().ToString();
    auto result = mm::MmRunPlan(*workload, spec, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->verified) << spec.name;
    return result->plan;
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
};

TEST_F(OperatorStageTest, FilterSelectivityEdges) {
  const rel::RelationConfig rc = Shape(6000, 3, 0.0, 11);

  // 100%: the full-range predicate keeps every row.
  PlanSpec all;
  all.name = "all";
  all.filters.push_back(Predicate{Column::kDate, 0, ~uint64_t{0}});
  PlanRunResult r = RunReal(rc, all, "all");
  EXPECT_EQ(r.rows_scanned, rc.r_objects);
  EXPECT_EQ(r.rows_filtered, rc.r_objects);
  EXPECT_EQ(r.output_rows, rc.r_objects);

  // 0%: an empty half-open interval keeps nothing; the sink sees no rows.
  PlanSpec none;
  none.name = "none";
  none.filters.push_back(Predicate{Column::kDate, 5, 5});
  r = RunReal(rc, none, "none");
  EXPECT_EQ(r.rows_scanned, rc.r_objects);
  EXPECT_EQ(r.rows_filtered, 0u);
  EXPECT_EQ(r.output_rows, 0u);
  EXPECT_EQ(r.checksum, 0u);

  // Conjunction: two predicates never pass more rows than either alone.
  PlanSpec conj;
  conj.name = "conj";
  conj.filters.push_back(Predicate{Column::kDate, 0, 1233});
  conj.filters.push_back(Predicate{Column::kQty, 1, 26});
  r = RunReal(rc, conj, "conj");
  EXPECT_GT(r.rows_filtered, 0u);
  EXPECT_LT(r.rows_filtered, rc.r_objects);
  EXPECT_EQ(r.output_rows, r.rows_filtered);
}

TEST_F(OperatorStageTest, GroupByCardinalities) {
  const rel::RelationConfig rc = Shape(5000, 2, 0.0, 23);

  // Zero groups: empty input produces empty output, not a zeroed group.
  PlanSpec zero;
  zero.name = "zero";
  zero.filters.push_back(Predicate{Column::kDate, 0, 0});
  zero.group_by = Column::kFlag;
  zero.aggs.push_back(AggSpec{AggOp::kCount, Column::kRId, Column::kRId});
  PlanRunResult r = RunReal(rc, zero, "zero");
  EXPECT_EQ(r.groups.size(), 0u);
  EXPECT_EQ(r.output_rows, 0u);
  EXPECT_EQ(r.checksum, 0u);

  // One group: a global aggregate (no group column) lands in key 0; the
  // counts/sums/extrema cover every accumulator kind at once.
  PlanSpec global;
  global.name = "global";
  global.aggs.push_back(AggSpec{AggOp::kCount, Column::kRId, Column::kRId});
  global.aggs.push_back(AggSpec{AggOp::kSum, Column::kQty, Column::kRId});
  global.aggs.push_back(AggSpec{AggOp::kMin, Column::kQty, Column::kRId});
  global.aggs.push_back(AggSpec{AggOp::kMax, Column::kQty, Column::kRId});
  r = RunReal(rc, global, "global");
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].key, 0u);
  EXPECT_EQ(r.groups[0].aggs[0], rc.r_objects);
  // sum/min/max of qty must be consistent: n*min <= sum <= n*max.
  EXPECT_GE(r.groups[0].aggs[1], rc.r_objects * r.groups[0].aggs[2]);
  EXPECT_LE(r.groups[0].aggs[1], rc.r_objects * r.groups[0].aggs[3]);
  EXPECT_GE(r.groups[0].aggs[2], 1u);
  EXPECT_LE(r.groups[0].aggs[3], 50u);

  // Many groups: grouping by flag yields its full 3-value domain, keys
  // sorted, counts totalling the input.
  PlanSpec flags;
  flags.name = "flags";
  flags.group_by = Column::kFlag;
  flags.aggs.push_back(AggSpec{AggOp::kCount, Column::kRId, Column::kRId});
  r = RunReal(rc, flags, "flags");
  ASSERT_EQ(r.groups.size(), 3u);
  uint64_t total = 0;
  for (size_t g = 0; g < r.groups.size(); ++g) {
    EXPECT_EQ(r.groups[g].key, g);
    total += r.groups[g].aggs[0];
  }
  EXPECT_EQ(total, rc.r_objects);
}

TEST_F(OperatorStageTest, EmptyInputPlansAcrossSinks) {
  const rel::RelationConfig rc = Shape(4096, 2, 0.0, 31);
  // Collect sink and GroupBy sink both see zero rows; both report empty
  // results, on both backends, and the reference oracle agrees (asserted
  // inside the Run helpers).
  for (bool probe : {false, true}) {
    PlanSpec spec;
    spec.name = probe ? "empty_probe" : "empty";
    spec.filters.push_back(Predicate{Column::kQty, 0, 1});  // qty >= 1 always
    spec.probe_s = probe;
    PlanRunResult sim = RunSim(rc, spec);
    PlanRunResult real =
        RunReal(rc, spec, probe ? "emptyp" : "empty");
    for (const PlanRunResult* r : {&sim, &real}) {
      EXPECT_EQ(r->rows_filtered, 0u);
      EXPECT_EQ(r->rows_joined, 0u);
      EXPECT_EQ(r->output_rows, 0u);
      EXPECT_EQ(r->checksum, 0u);
      EXPECT_TRUE(r->groups.empty());
    }
  }
}

TEST_F(OperatorStageTest, ProbeCollectReproducesTheJoin) {
  // Scan → ProbeS → Collect with no filter IS the pointer join: it must
  // reproduce the workload's expected join count and checksum exactly.
  const rel::RelationConfig rc = Shape(8192, 4, 0.5, 20260808);
  PlanSpec spec;
  spec.name = "join";
  spec.probe_s = true;

  auto workload = mm::BuildMmWorkload(mgr_.get(), "join", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  auto result = mm::MmRunPlan(*workload, spec, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->verified);
  EXPECT_EQ(result->plan.output_rows, workload->expected_output_count);
  EXPECT_EQ(result->plan.checksum, workload->expected_checksum);
  EXPECT_EQ(result->plan.rows_joined, rc.r_objects);

  PlanRunResult sim = RunSim(rc, spec);
  EXPECT_EQ(sim.output_rows, result->plan.output_rows);
  EXPECT_EQ(sim.checksum, result->plan.checksum);
}

// ---------------------------------------------------------------------------
// Identity matrices: the refactor's accountability tests
// ---------------------------------------------------------------------------

struct AlgoCase {
  const char* name;
  join::Algorithm algorithm;
};

// Every refactored driver: sim and real, static and stealing schedules,
// one identical count/checksum. This is the 4 joins × 2 backends × 2
// schedules matrix from the operator-layer refactor.
class DriverIdentityTest : public ::testing::TestWithParam<AlgoCase> {
 protected:
  void SetUp() override {
    std::string test_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : test_name) {
      if (c == '/') c = '_';
    }
    dir_ = ::testing::TempDir() + "oplayer_" + std::to_string(::getpid()) +
           "_" + test_name;
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  StatusOr<join::JoinRunResult> RunSim(const rel::RelationConfig& rc) {
    sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
    mc.num_disks = rc.num_partitions;
    sim::SimEnv env(mc);
    auto workload = rel::BuildWorkload(&env, rc);
    if (!workload.ok()) return workload.status();
    switch (GetParam().algorithm) {
      case join::Algorithm::kNestedLoops:
        return join::RunNestedLoops(&env, *workload, join::JoinParams{});
      case join::Algorithm::kSortMerge:
        return join::RunSortMerge(&env, *workload, join::JoinParams{});
      case join::Algorithm::kGrace:
        return join::RunGrace(&env, *workload, join::JoinParams{});
      case join::Algorithm::kHybridHash:
        return join::RunHybridHash(&env, *workload, join::JoinParams{});
    }
    return Status::InvalidArgument("bad algorithm");
  }

  StatusOr<mm::MmJoinResult> RunReal(const rel::RelationConfig& rc,
                                     exec::Schedule schedule,
                                     const std::string& prefix) {
    auto workload = mm::BuildMmWorkload(mgr_.get(), prefix, rc);
    if (!workload.ok()) return workload.status();
    mm::MmJoinOptions options;
    options.schedule = schedule;
    switch (GetParam().algorithm) {
      case join::Algorithm::kNestedLoops:
        return mm::MmNestedLoops(*workload, options);
      case join::Algorithm::kSortMerge:
        return mm::MmSortMerge(*workload, options);
      case join::Algorithm::kGrace:
        return mm::MmGrace(*workload, options);
      case join::Algorithm::kHybridHash:
        return mm::MmHybridHash(*workload, options);
    }
    return Status::InvalidArgument("bad algorithm");
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
};

TEST_P(DriverIdentityTest, BackendsAndSchedulesAgree) {
  const rel::RelationConfig rc = Shape(6144, 3, 0.4, 991);

  auto sim = RunSim(rc);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  ASSERT_TRUE(sim->verified);

  auto real_static = RunReal(rc, exec::Schedule::kStatic, "st");
  ASSERT_TRUE(real_static.ok()) << real_static.status().ToString();
  auto real_stealing = RunReal(rc, exec::Schedule::kStealing, "ws");
  ASSERT_TRUE(real_stealing.ok()) << real_stealing.status().ToString();

  EXPECT_TRUE(real_static->verified);
  EXPECT_TRUE(real_stealing->verified);
  EXPECT_EQ(sim->output_count, real_static->output_count);
  EXPECT_EQ(sim->output_checksum, real_static->output_checksum);
  EXPECT_EQ(real_static->output_count, real_stealing->output_count);
  EXPECT_EQ(real_static->output_checksum, real_stealing->output_checksum);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, DriverIdentityTest,
    ::testing::Values(AlgoCase{"nested_loops", join::Algorithm::kNestedLoops},
                      AlgoCase{"sort_merge", join::Algorithm::kSortMerge},
                      AlgoCase{"grace", join::Algorithm::kGrace},
                      AlgoCase{"hybrid_hash", join::Algorithm::kHybridHash}),
    [](const ::testing::TestParamInfo<AlgoCase>& info) {
      return std::string(info.param.name);
    });

// Every built-in plan: sim, real/static, real/stealing, real/scalar-kernel —
// one identical result (counts, groups, checksum).
class PlanIdentityTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    std::string test_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : test_name) {
      if (c == '/') c = '_';
    }
    dir_ = ::testing::TempDir() + "plan_" + std::to_string(::getpid()) + "_" +
           test_name;
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
};

TEST_P(PlanIdentityTest, BackendsSchedulesAndKernelsAgree) {
  const rel::RelationConfig rc = Shape(8192, 4, 0.5, 20260808);
  const exec::op::PlanSpec* spec = exec::op::FindPlan(GetParam());
  ASSERT_NE(spec, nullptr);

  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  mc.num_disks = rc.num_partitions;
  sim::SimEnv env(mc);
  auto sim_workload = rel::BuildWorkload(&env, rc);
  ASSERT_TRUE(sim_workload.ok());
  bool sim_verified = false;
  auto sim = exec::op::RunPlanSim(&env, *sim_workload, join::JoinParams{},
                                  *spec, &sim_verified);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  EXPECT_TRUE(sim_verified);

  auto workload = mm::BuildMmWorkload(mgr_.get(), "plan", rc);
  ASSERT_TRUE(workload.ok());
  struct Variant {
    const char* name;
    exec::Schedule schedule;
    exec::DerefKernel kernel;
  };
  const Variant variants[] = {
      {"static", exec::Schedule::kStatic, exec::DerefKernel::kPrefetch},
      {"stealing", exec::Schedule::kStealing, exec::DerefKernel::kPrefetch},
      {"scalar", exec::Schedule::kStealing, exec::DerefKernel::kScalar},
  };
  for (const Variant& v : variants) {
    mm::MmJoinOptions options;
    options.schedule = v.schedule;
    options.kernel = v.kernel;
    auto real = mm::MmRunPlan(*workload, *spec, options);
    ASSERT_TRUE(real.ok()) << v.name << ": " << real.status().ToString();
    EXPECT_TRUE(real->verified) << v.name;
    EXPECT_TRUE(exec::op::PlanResultsMatch(*sim, real->plan)) << v.name;
    EXPECT_EQ(sim->checksum, real->plan.checksum) << v.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlans, PlanIdentityTest,
                         ::testing::ValuesIn(exec::op::kPlanNames),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace mmjoin
