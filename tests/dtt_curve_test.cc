#include "model/dtt_curve.h"

#include <gtest/gtest.h>

namespace mmjoin::model {
namespace {

DttCurve MakeCurve() {
  return DttCurve({{1, 6.0}, {1000, 10.0}, {10000, 20.0}});
}

TEST(DttCurveTest, ExactPoints) {
  const DttCurve c = MakeCurve();
  EXPECT_DOUBLE_EQ(c.Ms(1), 6.0);
  EXPECT_DOUBLE_EQ(c.Ms(1000), 10.0);
  EXPECT_DOUBLE_EQ(c.Ms(10000), 20.0);
}

TEST(DttCurveTest, LinearInterpolation) {
  const DttCurve c = MakeCurve();
  EXPECT_NEAR(c.Ms(5500), 15.0, 1e-9);  // halfway between 1000 and 10000
}

TEST(DttCurveTest, ClampsOutsideRange) {
  const DttCurve c = MakeCurve();
  EXPECT_DOUBLE_EQ(c.Ms(0), 6.0);
  EXPECT_DOUBLE_EQ(c.Ms(1e9), 20.0);
}

TEST(DttCurveTest, SortsUnorderedPoints) {
  DttCurve c({{10000, 20.0}, {1, 6.0}, {1000, 10.0}});
  EXPECT_DOUBLE_EQ(c.Ms(1), 6.0);
  EXPECT_NEAR(c.Ms(500), 6.0 + 4.0 * 499.0 / 999.0, 1e-9);
}

TEST(MeasureDttCurvesTest, ProducesBothCurves) {
  disk::BandMeasureOptions opt;
  opt.area_blocks = 8000;
  opt.accesses_per_band = 16;
  opt.band_sizes = {1, 400, 1600, 6400};
  const DttCurves curves = MeasureDttCurves(disk::DiskGeometry{}, opt);
  ASSERT_FALSE(curves.read.empty());
  ASSERT_FALSE(curves.write.empty());
  // Reads: sequential cheaper than wide-band random.
  EXPECT_LT(curves.read.Ms(1), curves.read.Ms(6400));
  // Writes cheaper than reads at wide bands (deferred + SSTF).
  EXPECT_LT(curves.write.Ms(6400), curves.read.Ms(6400));
}

}  // namespace
}  // namespace mmjoin::model
