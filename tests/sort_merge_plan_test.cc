// The sort-merge parameter-choice rules of section 6.2/6.3: IRUN, NRUN,
// NPASS and LRUN as functions of memory.
#include <gtest/gtest.h>

#include "join/sort_merge.h"

namespace mmjoin::join {
namespace {

constexpr uint32_t kPage = 4096;
constexpr uint64_t kRs = 25600;  // |RS_i| at paper scale

JoinParams Defaults() { return JoinParams{}; }

TEST(PlanSortMergeTest, IrunFillsMemoryWithPointerOverhead) {
  const auto plan = PlanSortMerge(1 << 20, kPage, kRs, Defaults());
  EXPECT_EQ(plan.irun, (1ull << 20) / (sizeof(rel::RObject) + 8));
}

TEST(PlanSortMergeTest, NrunUsesThirdOfMemoryPages) {
  const auto plan = PlanSortMerge(1 << 20, kPage, kRs, Defaults());
  EXPECT_EQ(plan.nrun_abl, (1ull << 20) / (3 * kPage));
  EXPECT_EQ(plan.nrun_last, (1ull << 20) / (2 * kPage));
  EXPECT_GT(plan.nrun_last, plan.nrun_abl);
}

TEST(PlanSortMergeTest, TinyMemoryClampsToProgress) {
  const auto plan = PlanSortMerge(2 * kPage, kPage, kRs, Defaults());
  EXPECT_GE(plan.irun, 1u);
  EXPECT_GE(plan.nrun_abl, 2u);  // a 1-way merge would never finish
  EXPECT_GE(plan.nrun_last, 2u);
}

TEST(PlanSortMergeTest, NpassNonincreasingInMemory) {
  uint64_t prev = UINT64_MAX;
  for (uint64_t mem = 64ull << 10; mem <= 16ull << 20; mem *= 2) {
    const auto plan = PlanSortMerge(mem, kPage, kRs, Defaults());
    EXPECT_LE(plan.npass, prev) << "mem=" << mem;
    prev = plan.npass;
  }
  // Big memory: a single (join) pass.
  EXPECT_EQ(prev, 1u);
}

TEST(PlanSortMergeTest, LrunNeverExceedsLastFanIn) {
  for (uint64_t mem : {48ull << 10, 128ull << 10, 512ull << 10,
                       4ull << 20}) {
    for (uint64_t rs : {100ull, 5000ull, 25600ull, 400000ull}) {
      const auto plan = PlanSortMerge(mem, kPage, rs, Defaults());
      EXPECT_LE(plan.lrun, plan.nrun_last)
          << "mem=" << mem << " rs=" << rs;
      EXPECT_GE(plan.npass, 1u);
    }
  }
}

TEST(PlanSortMergeTest, NpassConsistentWithRunArithmetic) {
  for (uint64_t mem : {64ull << 10, 256ull << 10, 1ull << 20}) {
    const auto plan = PlanSortMerge(mem, kPage, kRs, Defaults());
    // Simulate the merge tree: runs0 shrinks by nrun_abl per pass until
    // <= nrun_last, then one final pass.
    uint64_t runs = plan.runs0;
    uint64_t passes = 0;
    while (runs > plan.nrun_last) {
      runs = (runs + plan.nrun_abl - 1) / plan.nrun_abl;
      ++passes;
    }
    EXPECT_EQ(plan.npass, passes + 1);
    EXPECT_EQ(plan.lrun, runs);
  }
}

TEST(PlanSortMergeTest, ManualOverridesWin) {
  JoinParams p;
  p.irun = 123;
  p.nrun_abl = 5;
  p.nrun_last = 7;
  const auto plan = PlanSortMerge(1 << 20, kPage, kRs, p);
  EXPECT_EQ(plan.irun, 123u);
  EXPECT_EQ(plan.nrun_abl, 5u);
  EXPECT_EQ(plan.nrun_last, 7u);
  EXPECT_EQ(plan.runs0, (kRs + 122) / 123);
}

TEST(PlanSortMergeTest, HeapPointerSizeMatters) {
  JoinParams fat;
  fat.heap_ptr_bytes = 128;
  const auto thin = PlanSortMerge(1 << 20, kPage, kRs, Defaults());
  const auto wide = PlanSortMerge(1 << 20, kPage, kRs, fat);
  EXPECT_LT(wide.irun, thin.irun);
}

TEST(PlanSortMergeTest, EmptyRelationStillOnePass) {
  const auto plan = PlanSortMerge(1 << 20, kPage, 0, Defaults());
  EXPECT_EQ(plan.runs0, 1u);  // degenerate single empty run
  EXPECT_EQ(plan.npass, 1u);
}

}  // namespace
}  // namespace mmjoin::join
