// The real-mmap join engine: correctness against the expected join, parity
// with the simulated workload (same seed => same join), parallel vs serial
// equivalence, and lifecycle hygiene.
#include "mmap/mmap_join.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <thread>

#include "mmap/mm_relation.h"
#include "obs/trace.h"
#include "rel/generator.h"
#include "sim/sim_env.h"

namespace mmjoin::mm {
namespace {

class MmapJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "mmjoin_" + std::to_string(::getpid()) +
           "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<SegmentManager>(dir_);
  }

  MmWorkload Build(uint64_t n, uint32_t d, double theta = 0.0) {
    rel::RelationConfig rc;
    rc.r_objects = rc.s_objects = n;
    rc.num_partitions = d;
    rc.zipf_theta = theta;
    auto w = BuildMmWorkload(mgr_.get(), "w", rc);
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    return std::move(w).value();
  }

  std::string dir_;
  std::unique_ptr<SegmentManager> mgr_;
};

TEST_F(MmapJoinTest, NestedLoopsJoinsCorrectly) {
  const MmWorkload w = Build(8192, 4);
  auto r = MmNestedLoops(w);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->verified);
  EXPECT_EQ(r->output_count, 8192u);
  // Workers are bounded by the hardware: min(D, hardware_concurrency).
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(r->threads_used, std::min(4u, hw));
  EXPECT_GT(r->wall_ms, 0.0);
}

TEST_F(MmapJoinTest, MaxThreadsBoundsWorkersAndBatchesPartitions) {
  // D = 4 partitions on 2 workers: each worker runs a strided batch of two
  // partitions, exercising the batching path deterministically regardless
  // of the host's core count.
  const MmWorkload w = Build(8192, 4);
  MmJoinOptions opt;
  opt.max_threads = 2;
  for (auto fn : {MmNestedLoops, MmSortMerge, MmGrace, MmHybridHash}) {
    auto r = fn(w, opt);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->verified);
    EXPECT_EQ(r->threads_used, 2u);
  }
}

TEST_F(MmapJoinTest, HybridHashJoinsCorrectly) {
  const MmWorkload w = Build(8192, 4, 0.5);
  auto r = MmHybridHash(w);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->verified);
  EXPECT_EQ(r->output_count, 8192u);
}

TEST_F(MmapJoinTest, RealRunReportsPassMarksAndExportsMetrics) {
  const MmWorkload w = Build(8192, 4);
  auto r = MmGrace(w);
  ASSERT_TRUE(r.ok());
  // The unified drivers mark the same pass boundaries on both backends.
  ASSERT_GE(r->run.passes.size(), 4u);
  EXPECT_EQ(r->run.passes.front().label, "setup");

  obs::MetricsRegistry registry;
  r->ExportMetrics(&registry);
  EXPECT_EQ(registry.counter("join.runs").value(), 1u);
  EXPECT_EQ(registry.counter("join.output_objects").value(),
            r->output_count);
  EXPECT_EQ(registry.histogram("join.elapsed_ms").count(), 1u);
  for (const auto& pass : r->run.passes) {
    EXPECT_EQ(registry.histogram("pass." + pass.label + ".ms").count(), 1u)
        << pass.label;
  }
}

TEST_F(MmapJoinTest, RealRunEmitsLoadableTrace) {
  const MmWorkload w = Build(4096, 2);
  obs::TraceRecorder trace;
  MmJoinOptions opt;
  opt.trace = &trace;
  auto r = MmNestedLoops(w, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->verified);
  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(trace.open_spans(), 0u);
  // Pass spans land on the driver track; the JSON is Chrome/Perfetto shaped.
  EXPECT_GE(trace.CountEvents("pass0"), 1u);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST_F(MmapJoinTest, SortMergeJoinsCorrectly) {
  const MmWorkload w = Build(8192, 4, 0.5);
  auto r = MmSortMerge(w);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->verified);
}

TEST_F(MmapJoinTest, GraceJoinsCorrectly) {
  const MmWorkload w = Build(8192, 4, 0.5);
  auto r = MmGrace(w);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->verified);
}

TEST_F(MmapJoinTest, SerialAndParallelAgree) {
  const MmWorkload w = Build(16384, 4);
  MmJoinOptions serial;
  serial.parallel = false;
  for (auto fn : {MmNestedLoops, MmSortMerge, MmGrace, MmHybridHash}) {
    auto par = fn(w, MmJoinOptions{});
    auto ser = fn(w, serial);
    ASSERT_TRUE(par.ok() && ser.ok());
    EXPECT_EQ(par->output_checksum, ser->output_checksum);
    EXPECT_TRUE(par->verified);
    EXPECT_TRUE(ser->verified);
    EXPECT_EQ(ser->threads_used, 1u);
  }
}

TEST_F(MmapJoinTest, SinglePartitionWorks) {
  const MmWorkload w = Build(2048, 1);
  for (auto fn : {MmNestedLoops, MmSortMerge, MmGrace, MmHybridHash}) {
    auto r = fn(w, MmJoinOptions{});
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->verified);
  }
}

TEST_F(MmapJoinTest, GraceOptionsHonoured) {
  const MmWorkload w = Build(4096, 2);
  MmJoinOptions opt;
  opt.k_buckets = 3;
  opt.tsize = 17;
  auto r = MmGrace(w, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->verified);
}

TEST_F(MmapJoinTest, MatchesSimulatedWorkloadJoin) {
  // Same seed and shape: the mmap workload's expected join must equal the
  // simulated workload's expected join, pointer for pointer.
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 4096;
  rc.num_partitions = 4;
  rc.seed = 31337;

  auto mm_w = BuildMmWorkload(mgr_.get(), "parity", rc);
  ASSERT_TRUE(mm_w.ok());

  sim::SimEnv env(sim::MachineConfig::SequentSymmetry1996());
  auto sim_w = rel::BuildWorkload(&env, rc);
  ASSERT_TRUE(sim_w.ok());

  EXPECT_EQ(mm_w->expected_checksum, sim_w->expected_checksum);
  EXPECT_EQ(mm_w->expected_output_count, sim_w->expected_output_count);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(mm_w->counts[i], sim_w->counts[i]);
  }
}

TEST_F(MmapJoinTest, WorkloadPersistsAcrossReopen) {
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 1024;
  rc.num_partitions = 2;
  uint64_t expected;
  {
    auto w = BuildMmWorkload(mgr_.get(), "persist", rc);
    ASSERT_TRUE(w.ok());
    expected = w->expected_checksum;
    for (auto& seg : w->r_segs) ASSERT_TRUE(seg.Sync().ok());
    for (auto& seg : w->s_segs) ASSERT_TRUE(seg.Sync().ok());
  }  // all mappings dropped
  // Reopen the raw segments and re-join by direct traversal.
  uint64_t checksum = 0;
  for (uint32_t i = 0; i < 2; ++i) {
    auto r_seg = mgr_->OpenSegment("persist_r" + std::to_string(i));
    ASSERT_TRUE(r_seg.ok());
    const auto* objs = reinterpret_cast<const rel::RObject*>(
        r_seg->Resolve(r_seg->root()));
    const uint64_t count = 512;
    for (uint64_t k = 0; k < count; ++k) {
      const rel::SPtr sp = rel::SPtr::Unpack(objs[k].sptr);
      checksum +=
          rel::OutputDigest(objs[k].id, rel::SKeyFor(sp.partition, sp.index));
    }
  }
  EXPECT_EQ(checksum, expected);
}

TEST_F(MmapJoinTest, DeleteWorkloadRemovesSegments) {
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 512;
  rc.num_partitions = 2;
  {
    auto w = BuildMmWorkload(mgr_.get(), "gone", rc);
    ASSERT_TRUE(w.ok());
  }
  EXPECT_TRUE(mgr_->Exists("gone_r0"));
  ASSERT_TRUE(DeleteMmWorkload(mgr_.get(), "gone", 2).ok());
  EXPECT_FALSE(mgr_->Exists("gone_r0"));
  EXPECT_FALSE(mgr_->Exists("gone_s1"));
}

TEST_F(MmapJoinTest, DuplicatePrefixRejected) {
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 512;
  rc.num_partitions = 2;
  auto a = BuildMmWorkload(mgr_.get(), "dup", rc);
  ASSERT_TRUE(a.ok());
  auto b = BuildMmWorkload(mgr_.get(), "dup", rc);
  EXPECT_FALSE(b.ok());
}

TEST_F(MmapJoinTest, AllAlgorithmsAgreeOnChecksum) {
  const MmWorkload w = Build(20000, 4, 0.7);
  auto nl = MmNestedLoops(w);
  auto sm = MmSortMerge(w);
  auto gr = MmGrace(w);
  auto hh = MmHybridHash(w);
  ASSERT_TRUE(nl.ok() && sm.ok() && gr.ok() && hh.ok());
  EXPECT_EQ(nl->output_checksum, sm->output_checksum);
  EXPECT_EQ(sm->output_checksum, gr->output_checksum);
  EXPECT_EQ(gr->output_checksum, hh->output_checksum);
  EXPECT_TRUE(nl->verified && sm->verified && gr->verified &&
              hh->verified);
}

}  // namespace
}  // namespace mmjoin::mm
