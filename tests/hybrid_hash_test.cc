// The pointer-based hybrid-hash join (the paper's deferred hash variant):
// correctness across the same sweep as the core algorithms, plus the
// defining property — it strictly reduces disk traffic relative to Grace
// and converges to Grace as memory shrinks.
#include "join/hybrid_hash.h"

#include <gtest/gtest.h>

#include "join/grace.h"
#include "join/oracle.h"
#include "model/join_model.h"
#include "rel/generator.h"

namespace mmjoin::join {
namespace {

struct TestEnv {
  TestEnv(uint64_t n, uint32_t d, double theta)
      : mc([&] {
          auto m = sim::MachineConfig::SequentSymmetry1996();
          m.num_disks = d;
          return m;
        }()),
        env(mc) {
    rel::RelationConfig rc;
    rc.r_objects = rc.s_objects = n;
    rc.num_partitions = d;
    rc.zipf_theta = theta;
    auto built = rel::BuildWorkload(&env, rc);
    EXPECT_TRUE(built.ok());
    workload = std::move(built).value();
  }

  sim::MachineConfig mc;
  sim::SimEnv env;
  rel::Workload workload;
};

struct Case {
  uint64_t n;
  uint32_t d;
  double theta;
  uint64_t mem;
};

class HybridHashTest : public ::testing::TestWithParam<Case> {};

TEST_P(HybridHashTest, MatchesOracle) {
  const Case c = GetParam();
  TestEnv s(c.n, c.d, c.theta);
  JoinParams p;
  p.m_rproc_bytes = c.mem;
  p.m_sproc_bytes = c.mem;
  auto r = RunHybridHash(&s.env, s.workload, p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->verified);
  EXPECT_EQ(r->output_count, c.n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HybridHashTest,
    ::testing::Values(Case{256, 1, 0.0, 64 << 10},
                      Case{4096, 2, 0.0, 64 << 10},
                      Case{4096, 4, 0.6, 64 << 10},
                      Case{20000, 4, 0.0, 1 << 20},
                      Case{20000, 4, 0.6, 1 << 20},
                      Case{4096, 4, 0.0, 4 * 4096}),  // tiny memory
    [](const ::testing::TestParamInfo<Case>& info) {
      const Case& c = info.param;
      return "n" + std::to_string(c.n) + "_d" + std::to_string(c.d) + "_t" +
             std::to_string(int(c.theta * 10)) + "_m" +
             std::to_string(c.mem >> 10) + "k";
    });

TEST(HybridHashProperty, NeverSlowerThanGraceAndFewerFaults) {
  for (double frac : {0.05, 0.2, 0.8}) {
    TestEnv s(25600, 4, 0.0);
    JoinParams p;
    p.m_rproc_bytes = static_cast<uint64_t>(
        frac * 25600 * sizeof(rel::RObject));
    p.m_sproc_bytes = p.m_rproc_bytes;

    TestEnv s2(25600, 4, 0.0);
    auto grace = RunGrace(&s.env, s.workload, p);
    auto hybrid = RunHybridHash(&s2.env, s2.workload, p);
    ASSERT_TRUE(grace.ok() && hybrid.ok());
    ASSERT_TRUE(grace->verified && hybrid->verified);
    EXPECT_LE(hybrid->elapsed_ms, grace->elapsed_ms * 1.01) << frac;
    // The resident bucket never adds disk traffic; allow a handful of
    // faults of slack for second-order access-order differences.
    EXPECT_LE(hybrid->faults, grace->faults + grace->faults / 100 + 8)
        << frac;
  }
}

TEST(HybridHashProperty, AdvantageGrowsWithMemory) {
  auto saving_at = [](double frac) {
    TestEnv sg(25600, 4, 0.0), sh(25600, 4, 0.0);
    JoinParams p;
    p.m_rproc_bytes = static_cast<uint64_t>(
        frac * 25600 * sizeof(rel::RObject));
    p.m_sproc_bytes = p.m_rproc_bytes;
    auto grace = RunGrace(&sg.env, sg.workload, p);
    auto hybrid = RunHybridHash(&sh.env, sh.workload, p);
    EXPECT_TRUE(grace.ok() && hybrid.ok());
    return (grace->elapsed_ms - hybrid->elapsed_ms) / grace->elapsed_ms;
  };
  EXPECT_GT(saving_at(0.9), saving_at(0.05));
}

TEST(HybridHashModel, ModelTracksExperiment) {
  TestEnv s(25600, 4, 0.0);
  JoinParams p;
  p.m_rproc_bytes = static_cast<uint64_t>(0.1 * 25600 * sizeof(rel::RObject));
  p.m_sproc_bytes = p.m_rproc_bytes;
  auto r = RunHybridHash(&s.env, s.workload, p);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->verified);

  model::ModelInputs in;
  in.machine = s.mc;
  in.relation = s.workload.config;
  in.skew = s.workload.skew;
  in.params = p;
  in.dtt = model::MeasureDttCurves(s.mc.disk);
  const double predicted = model::PredictHybridHash(in).total_ms();
  const double ratio = predicted / r->elapsed_ms;
  EXPECT_GT(ratio, 0.75) << predicted << " vs " << r->elapsed_ms;
  EXPECT_LT(ratio, 1.5) << predicted << " vs " << r->elapsed_ms;
}

TEST(HybridHashModel, PredictionBelowGraceAboveZeroSavings) {
  model::ModelInputs in;
  in.machine = sim::MachineConfig::SequentSymmetry1996();
  in.relation = rel::RelationConfig{};
  in.skew = 1.0;
  in.dtt = model::MeasureDttCurves(in.machine.disk);
  for (double frac : {0.05, 0.2, 0.8}) {
    in.params.m_rproc_bytes = static_cast<uint64_t>(
        frac * in.relation.r_objects * sizeof(rel::RObject));
    in.params.m_sproc_bytes = in.params.m_rproc_bytes;
    const double grace = model::PredictGrace(in).total_ms();
    const double hybrid = model::PredictHybridHash(in).total_ms();
    EXPECT_LT(hybrid, grace) << frac;
  }
}

}  // namespace
}  // namespace mmjoin::join
