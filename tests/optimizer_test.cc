// The adaptive planner: golden driver decisions on the pinned reference
// machine, cost-model sanity (budget monotonicity, residency penalty),
// the calibration JSON round-trip and its strict parser, the EWMA
// learning loop (direction, convergence, band routing), controller
// persistence, and — the contract everything rests on — algorithm=auto
// producing output bit-identical to every explicit driver on the real
// backend.
#include "opt/planner.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "mmap/mmap_join.h"
#include "mmap/mm_relation.h"
#include "model/join_model.h"
#include "opt/adaptive.h"
#include "opt/calibration.h"
#include "rel/generator.h"
#include "sim/sim_env.h"

namespace mmjoin::opt {
namespace {

// ---------------------------------------------------------------------------
// Golden decisions: the pinned ColdStoreReference machine makes these
// deterministic on any host. Each scenario is a textbook case the paper's
// cost analysis argues for; a planner that misses one has a broken model
// or a broken ranking, not a noisy measurement.
// ---------------------------------------------------------------------------

TEST(PlannerGoldenTest, TinyJoinPicksNestedLoops) {
  PlannerInputs in;
  in.r_objects = in.s_objects = 2048;
  in.partitions = 4;
  in.workers = 4;
  in.numa_nodes = 1;
  const PlannerDecision d =
      PlanJoin(in, Calibration::ColdStoreReference());
  EXPECT_EQ(d.algorithm, join::Algorithm::kNestedLoops) << d.explanation;
}

TEST(PlannerGoldenTest, BigUniformPicksHybridHash) {
  PlannerInputs in;
  in.r_objects = in.s_objects = 1ull << 22;
  in.partitions = 8;
  in.workers = 8;
  in.numa_nodes = 1;
  const PlannerDecision d =
      PlanJoin(in, Calibration::ColdStoreReference());
  EXPECT_EQ(d.algorithm, join::Algorithm::kHybridHash) << d.explanation;
  // Grace is the structural sibling (hybrid keeps bucket 0 resident and
  // skips one round trip); it must rank directly behind.
  ASSERT_GE(d.candidates.size(), 2u);
  EXPECT_EQ(d.candidates[1].algorithm, join::Algorithm::kGrace);
}

TEST(PlannerGoldenTest, SelectiveJoinWithWarmIndexPicksIndexNl) {
  PlannerInputs in;
  in.r_objects = 1ull << 22;
  in.s_objects = 1ull << 16;  // |S| = |R|/64: most of R is never matched
  in.partitions = 8;
  in.workers = 8;
  in.numa_nodes = 1;
  in.warm_index = true;
  const PlannerDecision d =
      PlanJoin(in, Calibration::ColdStoreReference());
  EXPECT_EQ(d.algorithm, join::Algorithm::kIndexNestedLoops)
      << d.explanation;
}

TEST(PlannerGoldenTest, MultiNodeBigJoinPicksMpsm) {
  PlannerInputs in;
  in.r_objects = in.s_objects = 1ull << 22;
  in.partitions = 8;
  in.workers = 8;
  in.numa_nodes = 4;
  const PlannerDecision d =
      PlanJoin(in, Calibration::ColdStoreReference());
  EXPECT_EQ(d.algorithm, join::Algorithm::kMpsm) << d.explanation;
}

TEST(PlannerTest, DecisionIsDeterministic) {
  PlannerInputs in;
  in.r_objects = in.s_objects = 1ull << 20;
  in.partitions = 8;
  in.workers = 4;
  in.numa_nodes = 1;
  const Calibration cal = Calibration::ColdStoreReference();
  const PlannerDecision a = PlanJoin(in, cal);
  const PlannerDecision b = PlanJoin(in, cal);
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_DOUBLE_EQ(a.predicted_ms, b.predicted_ms);
  EXPECT_EQ(a.explanation, b.explanation);
}

TEST(PlannerTest, RanksAllSixDriversSortedByCorrectedCost) {
  PlannerInputs in;
  in.r_objects = in.s_objects = 1ull << 20;
  in.partitions = 8;
  in.workers = 4;
  in.numa_nodes = 1;
  const PlannerDecision d =
      PlanJoin(in, Calibration::ColdStoreReference());
  ASSERT_EQ(d.candidates.size(), kNumAlgorithms);
  for (size_t i = 1; i < d.candidates.size(); ++i) {
    EXPECT_LE(d.candidates[i - 1].corrected_ms, d.candidates[i].corrected_ms);
  }
  EXPECT_EQ(d.algorithm, d.candidates.front().algorithm);
  EXPECT_DOUBLE_EQ(d.predicted_ms, d.candidates.front().corrected_ms);
  EXPECT_DOUBLE_EQ(
      d.workset_bytes,
      static_cast<double>(in.r_objects) * sizeof(rel::RObject) +
          static_cast<double>(in.s_objects) * sizeof(rel::SObject));
  EXPECT_FALSE(d.explanation.empty());
}

TEST(PlannerTest, LargerMemoryBudgetNeverRaisesHybridHashCost) {
  // More M_Rproc keeps a larger resident fraction of each bucket's build
  // side in memory — the hybrid-hash prediction must be monotone
  // non-increasing in the budget.
  const Calibration cal = Calibration::ColdStoreReference();
  double prev = 0;
  bool first = true;
  for (uint64_t mb : {1ull, 4ull, 16ull, 64ull, 256ull}) {
    PlannerInputs in;
    in.r_objects = in.s_objects = 1ull << 22;
    in.partitions = 8;
    in.workers = 8;
    in.numa_nodes = 1;
    in.m_rproc_bytes = mb << 20;
    const PlannerDecision d = PlanJoin(in, cal);
    double hybrid_ms = 0;
    for (const CandidateCost& c : d.candidates) {
      if (c.algorithm == join::Algorithm::kHybridHash) hybrid_ms = c.predicted_ms;
    }
    ASSERT_GT(hybrid_ms, 0.0);
    if (!first) EXPECT_LE(hybrid_ms, prev) << "budget " << mb << " MiB";
    prev = hybrid_ms;
    first = false;
  }
}

TEST(PlannerTest, ColdResidencyRaisesEveryPrediction) {
  PlannerInputs warm;
  warm.r_objects = warm.s_objects = 1ull << 22;
  warm.partitions = 8;
  warm.workers = 8;
  warm.numa_nodes = 1;
  PlannerInputs cold = warm;
  cold.residency = 0.0;
  const Calibration cal = Calibration::ColdStoreReference();
  const PlannerDecision dw = PlanJoin(warm, cal);
  const PlannerDecision dc = PlanJoin(cold, cal);
  for (const CandidateCost& cw : dw.candidates) {
    for (const CandidateCost& cc : dc.candidates) {
      if (cw.algorithm == cc.algorithm) {
        EXPECT_GT(cc.predicted_ms, cw.predicted_ms)
            << join::AlgorithmName(cw.algorithm);
      }
    }
  }
}

TEST(PlannerTest, PlanSimJoinIsDeterministicAndModeled) {
  model::ModelInputs in;
  in.machine = sim::MachineConfig::SequentSymmetry1996();
  in.relation.r_objects = in.relation.s_objects = 25600;
  in.relation.num_partitions = 4;
  in.params.m_rproc_bytes = 4ull << 20;
  in.params.m_sproc_bytes = 4ull << 20;
  in.dtt = model::MeasureDttCurves(in.machine.disk);
  const join::Algorithm a = PlanSimJoin(in);
  EXPECT_EQ(a, PlanSimJoin(in));
  // The paper models four drivers; the sim planner must stay inside them.
  EXPECT_TRUE(a == join::Algorithm::kNestedLoops ||
              a == join::Algorithm::kSortMerge ||
              a == join::Algorithm::kGrace ||
              a == join::Algorithm::kHybridHash);
}

// ---------------------------------------------------------------------------
// Calibration: JSON round-trip, strict parsing, EWMA learning.
// ---------------------------------------------------------------------------

TEST(CalibrationTest, JsonRoundTripPreservesEverything) {
  Calibration c = Calibration::ColdStoreReference();
  c.correction[0][0] = 1.25;
  c.correction[3][1] = 0.8;
  c.observations[0][0] = 7;
  c.observations[3][1] = 42;
  const std::string json = CalibrationToJson(c);
  auto back = CalibrationFromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_DOUBLE_EQ(back->machine.seq_ns_per_byte, c.machine.seq_ns_per_byte);
  EXPECT_DOUBLE_EQ(back->machine.fault_us_per_page,
                   c.machine.fault_us_per_page);
  EXPECT_EQ(back->machine.llc_bytes, c.machine.llc_bytes);
  ASSERT_EQ(back->machine.rand_points.size(), c.machine.rand_points.size());
  for (size_t i = 0; i < c.machine.rand_points.size(); ++i) {
    EXPECT_EQ(back->machine.rand_points[i].band_blocks,
              c.machine.rand_points[i].band_blocks);
    EXPECT_DOUBLE_EQ(back->machine.rand_points[i].ms_per_block,
                     c.machine.rand_points[i].ms_per_block);
  }
  for (uint32_t i = 0; i < kNumAlgorithms; ++i) {
    for (uint32_t b = 0; b < kNumBands; ++b) {
      EXPECT_DOUBLE_EQ(back->correction[i][b], c.correction[i][b]);
      EXPECT_EQ(back->observations[i][b], c.observations[i][b]);
    }
  }
}

TEST(CalibrationTest, StrictParserRejectsMalformedDocuments) {
  const std::string good = CalibrationToJson(Calibration::HostDefaults());
  ASSERT_TRUE(CalibrationFromJson(good).ok());
  // Unknown top-level key.
  {
    std::string bad = good;
    bad.replace(bad.find("\"version\""), 9, "\"vursion\"");
    EXPECT_FALSE(CalibrationFromJson(bad).ok());
  }
  // Unsupported version.
  {
    std::string bad = good;
    bad.replace(bad.find("\"version\":1"), 11, "\"version\":2");
    EXPECT_FALSE(CalibrationFromJson(bad).ok());
  }
  // Unknown machine key.
  {
    std::string bad = good;
    bad.replace(bad.find("seq_ns_per_byte"), 15, "seq_ns_per_bite");
    EXPECT_FALSE(CalibrationFromJson(bad).ok());
  }
  // Unknown driver name in the correction table.
  {
    std::string bad = good;
    bad.replace(bad.find("nested-loops"), 12, "nested-hoops");
    EXPECT_FALSE(CalibrationFromJson(bad).ok());
  }
  // A correction entry must carry one ewma value per working-set band.
  {
    std::string bad = good;
    const size_t pos = bad.find("\"ewma\":[1,1]");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 12, "\"ewma\":[1]");
    EXPECT_FALSE(CalibrationFromJson(bad).ok());
  }
  // Not JSON at all / empty.
  EXPECT_FALSE(CalibrationFromJson("").ok());
  EXPECT_FALSE(CalibrationFromJson("{\"calibration\":").ok());
  EXPECT_FALSE(CalibrationFromJson("{}").ok());
}

TEST(CalibrationTest, ObserveRoutesResidualsToTheWorksetBand) {
  Calibration c;  // default llc_bytes = 8 MiB
  const double small_ws = 1 << 20;   // band 0
  const double big_ws = 64ull << 20;  // band 1
  ASSERT_EQ(c.BandFor(small_ws), 0u);
  ASSERT_EQ(c.BandFor(big_ws), 1u);
  c.Observe(join::Algorithm::kGrace, small_ws, 10.0, 20.0);
  EXPECT_GT(c.correction[static_cast<uint32_t>(join::Algorithm::kGrace)][0],
            1.0);
  EXPECT_DOUBLE_EQ(
      c.correction[static_cast<uint32_t>(join::Algorithm::kGrace)][1], 1.0);
  c.Observe(join::Algorithm::kGrace, big_ws, 10.0, 5.0);
  EXPECT_LT(c.correction[static_cast<uint32_t>(join::Algorithm::kGrace)][1],
            1.0);
  EXPECT_EQ(c.observations[static_cast<uint32_t>(join::Algorithm::kGrace)][0],
            1u);
  EXPECT_EQ(c.observations[static_cast<uint32_t>(join::Algorithm::kGrace)][1],
            1u);
  // Other drivers untouched.
  EXPECT_DOUBLE_EQ(
      c.correction[static_cast<uint32_t>(join::Algorithm::kSortMerge)][0],
      1.0);
  // Non-positive pairs are ignored.
  Calibration untouched;
  untouched.Observe(join::Algorithm::kGrace, small_ws, 0.0, 5.0);
  untouched.Observe(join::Algorithm::kGrace, small_ws, 5.0, 0.0);
  EXPECT_DOUBLE_EQ(
      untouched.correction[static_cast<uint32_t>(join::Algorithm::kGrace)][0],
      1.0);
  EXPECT_EQ(
      untouched
          .observations[static_cast<uint32_t>(join::Algorithm::kGrace)][0],
      0u);
}

TEST(CalibrationTest, EwmaConvergesCorrectedPredictionOntoActual) {
  // The planner reports CORRECTED predictions, so Observe() sees
  // predicted = raw * correction. The fixed point of the update must be
  // corrected == actual: with a raw prediction that is persistently 2x
  // too low, the correction converges to 2.
  Calibration c;
  const double raw_ms = 10.0, actual_ms = 20.0;
  const uint32_t i = static_cast<uint32_t>(join::Algorithm::kGrace);
  for (int n = 0; n < 60; ++n) {
    c.Observe(join::Algorithm::kGrace, 1 << 20, raw_ms * c.correction[i][0],
              actual_ms);
  }
  EXPECT_NEAR(c.correction[i][0], actual_ms / raw_ms, 0.05);
}

TEST(CalibrationTest, MeasureCalibrationProducesSaneNumbers) {
  MeasureOptions opts;
  opts.max_band_bytes = 2ull << 20;  // keep the probe fast in CI
  opts.repetitions = 1;
  const Calibration c = MeasureCalibration(opts);
  EXPECT_GT(c.machine.seq_ns_per_byte, 0.0);
  EXPECT_LT(c.machine.seq_ns_per_byte, 100.0);
  EXPECT_GT(c.machine.scatter_ns_per_byte, 0.0);
  EXPECT_GT(c.machine.sort_ns_per_cmp, 0.0);
  EXPECT_GT(c.machine.hash_build_ns, 0.0);
  EXPECT_GT(c.machine.hash_probe_ns, 0.0);
  EXPECT_GT(c.machine.index_probe_ns_per_level, 0.0);
  EXPECT_GT(c.machine.fault_us_per_page, 0.0);
  ASSERT_GE(c.machine.rand_points.size(), 2u);
  for (const auto& pt : c.machine.rand_points) {
    EXPECT_GT(pt.ms_per_block, 0.0);
  }
}

TEST(AdaptiveControllerTest, PersistsAcrossInstances) {
  const std::string path = ::testing::TempDir() + "adaptive_cal_" +
                           std::to_string(::getpid()) + ".json";
  std::remove(path.c_str());
  {
    AdaptiveController fresh(path, Calibration::ColdStoreReference());
    EXPECT_FALSE(fresh.loaded_from_file());
    EXPECT_EQ(fresh.observations(), 0u);
    fresh.Observe(join::Algorithm::kGrace, 1 << 20, 10.0, 20.0);
    EXPECT_EQ(fresh.observations(), 1u);
    EXPECT_EQ(fresh.save_errors(), 0u);
  }
  {
    AdaptiveController reloaded(path);
    EXPECT_TRUE(reloaded.loaded_from_file());
    EXPECT_EQ(reloaded.observations(), 1u);
    const Calibration snap = reloaded.snapshot();
    EXPECT_GT(
        snap.correction[static_cast<uint32_t>(join::Algorithm::kGrace)][0],
        1.0);
    // The reference machine rode along, not the host defaults.
    EXPECT_DOUBLE_EQ(snap.machine.seq_ns_per_byte,
                     Calibration::ColdStoreReference().machine.seq_ns_per_byte);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The contract: algorithm=auto is bit-identical to every explicit driver.
// ---------------------------------------------------------------------------

class AutoIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "mmjoin_opt_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
};

TEST_F(AutoIdentityTest, AutoMatchesEveryExplicitDriver) {
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = 8192;
  rc.num_partitions = 4;
  rc.zipf_theta = 1.1;
  auto w = mm::BuildMmWorkload(mgr_.get(), "opt", rc);
  ASSERT_TRUE(w.ok()) << w.status().ToString();

  AdaptiveController controller;
  mm::MmJoinOptions auto_opt;
  auto_opt.algorithm = mm::MmAlgorithm::kAuto;
  auto_opt.planner = &controller;
  auto auto_r = mm::MmJoin(*w, auto_opt);
  ASSERT_TRUE(auto_r.ok()) << auto_r.status().ToString();
  EXPECT_TRUE(auto_r->verified);
  EXPECT_TRUE(auto_r->auto_selected);
  EXPECT_FALSE(auto_r->planner_note.empty());
  EXPECT_GT(auto_r->run.model_predicted_ms, 0.0);
  EXPECT_EQ(controller.observations(), 1u);

  const mm::MmAlgorithm kExplicit[] = {
      mm::MmAlgorithm::kNestedLoops, mm::MmAlgorithm::kSortMerge,
      mm::MmAlgorithm::kMpsm,        mm::MmAlgorithm::kGrace,
      mm::MmAlgorithm::kHybridHash,  mm::MmAlgorithm::kIndexNestedLoops};
  for (mm::MmAlgorithm algo : kExplicit) {
    mm::MmJoinOptions opt;
    opt.algorithm = algo;
    auto r = mm::MmJoin(*w, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->verified);
    EXPECT_FALSE(r->auto_selected);
    EXPECT_EQ(r->output_count, auto_r->output_count);
    EXPECT_EQ(r->output_checksum, auto_r->output_checksum);
  }
}

}  // namespace
}  // namespace mmjoin::opt
