#include "disk/disk_model.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace mmjoin::disk {
namespace {

DiskGeometry Geo() { return DiskGeometry{}; }

TEST(SeekTimeTest, ZeroDistanceIsFree) {
  SimulatedDisk d(Geo());
  EXPECT_EQ(d.SeekTime(0), 0.0);
}

TEST(SeekTimeTest, MonotoneInDistance) {
  SimulatedDisk d(Geo());
  double prev = 0;
  for (uint64_t dist : {1ull, 10ull, 100ull, 1000ull, 10000ull, 100000ull}) {
    const double t = d.SeekTime(dist);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(SeekTimeTest, BoundedByMinAndMax) {
  const DiskGeometry g = Geo();
  SimulatedDisk d(g);
  EXPECT_GE(d.SeekTime(1), g.min_seek_ms);
  EXPECT_LE(d.SeekTime(g.num_blocks - 1), g.max_seek_ms + 1e-9);
}

TEST(ReadTest, SequentialIsCheaperThanRandom) {
  const DiskGeometry g = Geo();
  SimulatedDisk seq(g), rnd(g);
  double seq_ms = 0, rnd_ms = 0;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) seq_ms += seq.ReadBlock(i);
  for (int i = 0; i < 1000; ++i) rnd_ms += rnd.ReadBlock(rng.Uniform(100000));
  EXPECT_LT(seq_ms, rnd_ms / 2);
}

TEST(ReadTest, SequentialCostIsOverheadPlusTransfer) {
  const DiskGeometry g = Geo();
  SimulatedDisk d(g);
  d.ReadBlock(0);  // position the arm
  const double t = d.ReadBlock(1);
  EXPECT_DOUBLE_EQ(t, g.overhead_ms + g.transfer_ms);
}

TEST(ReadTest, RandomCostIncludesSeekAndRotation) {
  const DiskGeometry g = Geo();
  SimulatedDisk d(g);
  d.ReadBlock(0);
  const double t = d.ReadBlock(50000);
  EXPECT_GT(t, g.overhead_ms + g.transfer_ms + g.min_seek_ms);
}

TEST(ReadTest, ArmAdvancesPastBlock) {
  SimulatedDisk d(Geo());
  d.ReadBlock(100);
  EXPECT_EQ(d.arm(), 101u);
}

TEST(WriteTest, QueuedWritesAreDeferred) {
  const DiskGeometry g = Geo();
  SimulatedDisk d(g);
  // Up to the queue capacity, writes cost nothing at issue time.
  for (uint32_t i = 0; i < g.write_queue_blocks; ++i) {
    EXPECT_EQ(d.WriteBlock(i * 97 % g.num_blocks), 0.0);
  }
  // The next write forces a flush of the nearest pending block.
  EXPECT_GT(d.WriteBlock(12345), 0.0);
}

TEST(WriteTest, FlushDrainsEverything) {
  const DiskGeometry g = Geo();
  SimulatedDisk d(g);
  for (int i = 0; i < 10; ++i) d.WriteBlock(i * 1000);
  const double t = d.FlushWrites();
  EXPECT_GT(t, 0.0);
  EXPECT_EQ(d.stats().flushed_writes, 10u);
  EXPECT_EQ(d.FlushWrites(), 0.0);  // idempotent
}

TEST(WriteTest, ShortestSeekFirstBeatsFifoOrder) {
  // Random writes in a wide band, flushed SSTF, must cost less per block
  // than immediate (unscheduled) reads of the same blocks.
  const DiskGeometry g = Geo();
  SimulatedDisk wr(g), rd(g);
  Rng rng(2);
  std::vector<uint64_t> blocks(512);
  for (auto& b : blocks) b = rng.Uniform(12800);
  double write_ms = 0, read_ms = 0;
  for (uint64_t b : blocks) write_ms += wr.WriteBlock(b);
  write_ms += wr.FlushWrites();
  for (uint64_t b : blocks) read_ms += rd.ReadBlock(b);
  EXPECT_LT(write_ms, read_ms);
}

TEST(StatsTest, CountersTrackOperations) {
  SimulatedDisk d(Geo());
  d.ReadBlock(5);
  d.ReadBlock(10);
  d.WriteBlock(20);
  d.FlushWrites();
  EXPECT_EQ(d.stats().reads, 2u);
  EXPECT_EQ(d.stats().writes, 1u);
  EXPECT_EQ(d.stats().flushed_writes, 1u);
  EXPECT_GT(d.stats().busy_ms, 0.0);
  EXPECT_GT(d.stats().seek_blocks, 0u);
  d.ResetStats();
  EXPECT_EQ(d.stats().reads, 0u);
}

TEST(DeterminismTest, SameSequenceSameCost) {
  SimulatedDisk a(Geo()), b(Geo());
  Rng rng(3);
  double ta = 0, tb = 0;
  std::vector<uint64_t> blocks(200);
  for (auto& blk : blocks) blk = rng.Uniform(10000);
  for (uint64_t blk : blocks) ta += a.ReadBlock(blk);
  for (uint64_t blk : blocks) tb += b.ReadBlock(blk);
  EXPECT_DOUBLE_EQ(ta, tb);
}

}  // namespace
}  // namespace mmjoin::disk
