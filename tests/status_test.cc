#include "util/status.h"

#include <gtest/gtest.h>

namespace mmjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("gone"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnMacro(int x) {
  MMJOIN_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UseReturnMacro(1).ok());
  EXPECT_EQ(UseReturnMacro(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> QuarterOf(int x) {
  MMJOIN_ASSIGN_OR_RETURN(int half, HalfOf(x));
  MMJOIN_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(StatusMacroTest, AssignOrReturn) {
  auto ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(QuarterOf(6).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mmjoin
