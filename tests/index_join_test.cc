// Index nested-loops driver (EXT-8): identity across every execution
// configuration, selective-join behavior, and the index telemetry.
//
// The driver repartitions exactly like Grace, then bulk-builds a static
// per-partition B+-tree over the repartitioned references and probes it
// once per S tuple. Like every other driver it is ONE template over the
// backend concept, so sim and real runs — under any schedule and any
// dereference kernel — must produce the identical verified join.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "join/index_nl.h"
#include "join/join_common.h"
#include "mmap/mm_relation.h"
#include "mmap/mmap_join.h"
#include "mmap/segment_manager.h"
#include "rel/generator.h"
#include "sim/sim_env.h"

namespace mmjoin {
namespace {

class IndexJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string test_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : test_name) {
      if (c == '/') c = '_';
    }
    dir_ = ::testing::TempDir() + "ixjoin_" + std::to_string(::getpid()) +
           "_" + test_name;
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  static rel::RelationConfig Shape(uint64_t r, uint64_t s, uint32_t d,
                                   double theta, uint64_t seed) {
    rel::RelationConfig rc;
    rc.r_objects = r;
    rc.s_objects = s;
    rc.num_partitions = d;
    rc.zipf_theta = theta;
    rc.seed = seed;
    return rc;
  }

  StatusOr<join::JoinRunResult> RunSim(const rel::RelationConfig& rc,
                                       const join::JoinParams& params) {
    sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
    mc.num_disks = rc.num_partitions;
    sim::SimEnv env(mc);
    auto workload = rel::BuildWorkload(&env, rc);
    if (!workload.ok()) return workload.status();
    return join::RunIndexNestedLoops(&env, *workload, params);
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
};

TEST_F(IndexJoinTest, IdentityAcrossScheduleAndKernel) {
  // static/stealing x prefetch/scalar, all against the one sim reference.
  const rel::RelationConfig rc = Shape(6000, 6000, 3, 0.6, 2026'08'08);
  auto sim_result = RunSim(rc, join::JoinParams{});
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  ASSERT_TRUE(sim_result->verified);

  auto workload = mm::BuildMmWorkload(mgr_.get(), "matrix", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  const exec::Schedule schedules[] = {exec::Schedule::kStatic,
                                      exec::Schedule::kStealing};
  const exec::DerefKernel kernels[] = {exec::DerefKernel::kPrefetch,
                                       exec::DerefKernel::kScalar};
  for (exec::Schedule schedule : schedules) {
    for (exec::DerefKernel kernel : kernels) {
      SCOPED_TRACE(testing::Message()
                   << "schedule=" << static_cast<int>(schedule)
                   << " kernel=" << static_cast<int>(kernel));
      mm::MmJoinOptions options;
      options.schedule = schedule;
      options.kernel = kernel;
      auto result = mm::MmIndexNestedLoops(*workload, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(result->verified);
      EXPECT_EQ(result->output_count, sim_result->output_count);
      EXPECT_EQ(result->output_checksum, sim_result->output_checksum);
    }
  }
}

TEST_F(IndexJoinTest, SelectiveJoinProbesEverySButMatchesFew) {
  // |R| << |S|: most S tuples have no referencing R. The index answers
  // those probes without ever dereferencing the S object — the telemetry
  // shows every S probed but only the matched subset producing output.
  const rel::RelationConfig rc = Shape(1000, 16000, 2, 0.0, 31);
  auto workload = mm::BuildMmWorkload(mgr_.get(), "selective", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  auto result = mm::MmIndexNestedLoops(*workload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->verified);

  const join::JoinRunResult& run = result->run;
  EXPECT_EQ(run.index_entries, rc.r_objects);
  EXPECT_EQ(run.index_probes, rc.s_objects);
  EXPECT_LE(run.index_matches, rc.r_objects);
  EXPECT_GT(run.index_matches, 0u);
  // Strictly selective: far fewer matched probes than probes issued.
  EXPECT_LT(run.index_matches, run.index_probes / 4);
  EXPECT_EQ(run.output_count, rc.r_objects);  // every R finds its S
}

TEST_F(IndexJoinTest, SkewAndDuplicatesStillExact) {
  // Heavy zipf skew concentrates many R references on few S objects —
  // duplicate key runs in the leaf level, including runs that span leaf
  // windows. The walk-back in the probe must find every one.
  const rel::RelationConfig rc = Shape(12000, 2000, 2, 1.1, 404);
  auto sim_result = RunSim(rc, join::JoinParams{});
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  ASSERT_TRUE(sim_result->verified);

  auto workload = mm::BuildMmWorkload(mgr_.get(), "skew", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  auto result = mm::MmIndexNestedLoops(*workload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->verified);
  EXPECT_EQ(result->output_count, sim_result->output_count);
  EXPECT_EQ(result->output_checksum, sim_result->output_checksum);
  EXPECT_EQ(result->run.index_entries, rc.r_objects);
}

TEST_F(IndexJoinTest, SinglePartitionAndSingleBucket) {
  // Degenerate plans: D=1 (no repartition traffic) and a forced K=1 (the
  // whole partition is one sorted run) must still verify.
  {
    const rel::RelationConfig rc = Shape(3000, 3000, 1, 0.5, 51);
    auto workload = mm::BuildMmWorkload(mgr_.get(), "d1", rc);
    ASSERT_TRUE(workload.ok()) << workload.status().ToString();
    auto result = mm::MmIndexNestedLoops(*workload);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->verified);
  }
  {
    const rel::RelationConfig rc = Shape(3000, 3000, 2, 0.5, 52);
    auto workload = mm::BuildMmWorkload(mgr_.get(), "k1", rc);
    ASSERT_TRUE(workload.ok()) << workload.status().ToString();
    mm::MmJoinOptions options;
    options.k_buckets = 1;
    auto result = mm::MmIndexNestedLoops(*workload, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->verified);
  }
}

TEST_F(IndexJoinTest, PassStructure) {
  // The driver's pass marks: setup, the two Grace-style partition passes,
  // then index build and probe.
  const rel::RelationConfig rc = Shape(2048, 2048, 2, 0.0, 61);
  auto sim_result = RunSim(rc, join::JoinParams{});
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  std::vector<std::string> labels;
  for (const auto& pass : sim_result->passes) labels.push_back(pass.label);
  const std::vector<std::string> expected = {"setup", "pass0", "pass1",
                                             "index-build", "index-probe"};
  EXPECT_EQ(labels, expected);
}

TEST_F(IndexJoinTest, MetricsExportIndexCounters) {
  const rel::RelationConfig rc = Shape(1024, 1024, 2, 0.0, 71);
  auto workload = mm::BuildMmWorkload(mgr_.get(), "metrics", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  auto result = mm::MmIndexNestedLoops(*workload);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  obs::MetricsRegistry registry;
  result->ExportMetrics(&registry);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("join.index.entries"), std::string::npos);
  EXPECT_NE(json.find("join.index.probes"), std::string::npos);
  EXPECT_NE(json.find("join.index.matches"), std::string::npos);
}

}  // namespace
}  // namespace mmjoin
