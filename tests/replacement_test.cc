#include "vm/replacement.h"

#include <gtest/gtest.h>

namespace mmjoin::vm {
namespace {

class PolicyTest : public ::testing::TestWithParam<PolicyKind> {
 protected:
  std::unique_ptr<ReplacementPolicy> Make(size_t capacity) {
    return ReplacementPolicy::Create(GetParam(), capacity);
  }
};

TEST_P(PolicyTest, VictimIsATrackedFrame) {
  auto p = Make(4);
  p->OnInsert(0);
  p->OnInsert(1);
  p->OnInsert(2);
  const size_t v = p->PickVictim();
  EXPECT_LT(v, 3u);
}

TEST_P(PolicyTest, RemoveThenVictimNeverReturnsRemoved) {
  auto p = Make(4);
  for (size_t f = 0; f < 4; ++f) p->OnInsert(f);
  p->OnRemove(2);
  for (int i = 0; i < 3; ++i) {
    const size_t v = p->PickVictim();
    EXPECT_NE(v, 2u);
    p->OnRemove(v);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(PolicyKind::kLru,
                                           PolicyKind::kClock,
                                           PolicyKind::kFifo));

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  LruPolicy p(3);
  p.OnInsert(0);
  p.OnInsert(1);
  p.OnInsert(2);
  EXPECT_EQ(p.PickVictim(), 0u);
  p.OnAccess(0);  // now 1 is the oldest
  EXPECT_EQ(p.PickVictim(), 1u);
  p.OnAccess(1);
  EXPECT_EQ(p.PickVictim(), 2u);
}

TEST(FifoPolicyTest, IgnoresAccesses) {
  FifoPolicy p(3);
  p.OnInsert(0);
  p.OnInsert(1);
  p.OnInsert(2);
  p.OnAccess(0);
  p.OnAccess(0);
  EXPECT_EQ(p.PickVictim(), 0u);  // still first in
}

TEST(ClockPolicyTest, SecondChanceSkipsReferencedFrames) {
  ClockPolicy p(3);
  p.OnInsert(0);
  p.OnInsert(1);
  p.OnInsert(2);
  // All referenced: first sweep clears bits, second sweep evicts frame 0.
  EXPECT_EQ(p.PickVictim(), 0u);
  // Re-reference 1; 1 gets a second chance over 2... after removing 0,
  // hand is past 0.
  p.OnRemove(0);
  p.OnAccess(1);
  const size_t v = p.PickVictim();
  EXPECT_EQ(v, 2u);
}

TEST(PolicyKindNameTest, Names) {
  EXPECT_STREQ(PolicyKindName(PolicyKind::kLru), "LRU");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kClock), "CLOCK");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kFifo), "FIFO");
}

// Differential test: LRU and FIFO diverge on a re-referenced scan.
TEST(PolicyDifferentialTest, LruKeepsHotPageFifoDoesNot) {
  LruPolicy lru(3);
  FifoPolicy fifo(3);
  for (size_t f = 0; f < 3; ++f) {
    lru.OnInsert(f);
    fifo.OnInsert(f);
  }
  lru.OnAccess(0);
  fifo.OnAccess(0);
  EXPECT_EQ(lru.PickVictim(), 1u);
  EXPECT_EQ(fifo.PickVictim(), 0u);
}

}  // namespace
}  // namespace mmjoin::vm
