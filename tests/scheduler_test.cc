// The morsel-driven work-stealing scheduler (exec/scheduler.h):
//
//   * BuildChains is pure and deterministic: exact coverage of every
//     partition, in-order morsels, empty partitions still get an epilogue
//     morsel, hot partitions are over-split, independent mode emits
//     single-morsel chains.
//   * The pool runs every morsel exactly once, keeps chained morsels in
//     order, and actually steals under forced contention.
//   * End to end, output count/checksum are bit-identical across worker
//     counts and schedules — the paper's join results cannot depend on how
//     the work was dealt — and the real stealing run still matches the
//     deterministic simulator on a skewed workload.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/scheduler.h"
#include "join/join_common.h"
#include "join/nested_loops.h"
#include "join/grace.h"
#include "mmap/mm_relation.h"
#include "mmap/mmap_join.h"
#include "mmap/segment_manager.h"
#include "rel/generator.h"
#include "sim/sim_env.h"

namespace mmjoin {
namespace {

using exec::BuildChains;
using exec::kAnyNode;
using exec::Morsel;
using exec::MorselChain;
using exec::Schedule;
using exec::SchedulerOptions;
using exec::WorkStealingScheduler;

SchedulerOptions Opts(uint32_t workers, uint64_t morsel_tuples,
                      double factor = exec::kDefaultSkewSplitFactor) {
  SchedulerOptions so;
  so.workers = workers;
  so.morsel_tuples = morsel_tuples;
  so.skew_split_factor = factor;
  return so;
}

// ---------------------------------------------------------------------------
// BuildChains
// ---------------------------------------------------------------------------

TEST(BuildChainsTest, ChainedCoversEveryPartitionInOrder) {
  const std::vector<uint64_t> counts = {10, 5, 0};
  const auto chains = BuildChains(counts, Opts(2, 4), /*independent=*/false);

  ASSERT_EQ(chains.size(), 3u);  // one chain per partition
  for (uint32_t i = 0; i < 3; ++i) {
    const MorselChain& c = chains[i];
    EXPECT_EQ(c.partition, i);
    EXPECT_GE(c.cost, 1u);
    ASSERT_FALSE(c.morsels.empty());
    // In-order, contiguous, exact coverage of [0, counts[i]).
    uint64_t expect_begin = 0;
    for (const Morsel& m : c.morsels) {
      EXPECT_EQ(m.partition, i);
      EXPECT_EQ(m.begin, expect_begin);
      EXPECT_LE(m.end - m.begin, 4u);
      expect_begin = m.end;
    }
    EXPECT_EQ(expect_begin, counts[i]);
  }
  EXPECT_EQ(chains[0].morsels.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(chains[1].morsels.size(), 2u);  // 4 + 1
  // A zero-count partition still gets one empty morsel so epilogues run.
  ASSERT_EQ(chains[2].morsels.size(), 1u);
  EXPECT_EQ(chains[2].morsels[0].begin, 0u);
  EXPECT_EQ(chains[2].morsels[0].end, 0u);
}

TEST(BuildChainsTest, IndependentEmitsSingleMorselChains) {
  const std::vector<uint64_t> counts = {10, 0};
  const auto chains = BuildChains(counts, Opts(2, 4), /*independent=*/true);

  // Partition 0 decomposes into 3 chains; partition 1 keeps its epilogue.
  ASSERT_EQ(chains.size(), 4u);
  uint64_t covered = 0;
  for (const MorselChain& c : chains) {
    ASSERT_EQ(c.morsels.size(), 1u);
    EXPECT_EQ(c.cost, std::max<uint64_t>(1, c.morsels[0].end -
                                                c.morsels[0].begin));
    if (c.partition == 0) covered += c.morsels[0].end - c.morsels[0].begin;
  }
  EXPECT_EQ(covered, 10u);
}

TEST(BuildChainsTest, HotPartitionIsOverSplit) {
  // Partition 0 holds almost everything: 8000 > 4 * mean(8700/8), so its
  // morsel size shrinks to ceil(8000 / (workers * factor)) = 500 even
  // though the base morsel would swallow it whole.
  std::vector<uint64_t> counts = {8000, 100, 100, 100, 100, 100, 100, 100};
  const auto chains =
      BuildChains(counts, Opts(4, /*morsel_tuples=*/1 << 20, 4.0),
                  /*independent=*/false);
  ASSERT_EQ(chains.size(), 8u);
  EXPECT_EQ(chains[0].morsels.size(), 16u);  // 8000 / 500
  for (uint32_t i = 1; i < 8; ++i) {
    EXPECT_EQ(chains[i].morsels.size(), 1u);  // cold: one base-size morsel
  }
}

TEST(BuildChainsTest, DeterministicForSameInputs) {
  const std::vector<uint64_t> counts = {977, 11, 4096, 0, 313};
  const auto a = BuildChains(counts, Opts(8, 128), true);
  const auto b = BuildChains(counts, Opts(8, 128), true);
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].partition, b[k].partition);
    EXPECT_EQ(a[k].cost, b[k].cost);
    ASSERT_EQ(a[k].morsels.size(), b[k].morsels.size());
    for (size_t m = 0; m < a[k].morsels.size(); ++m) {
      EXPECT_EQ(a[k].morsels[m].begin, b[k].morsels[m].begin);
      EXPECT_EQ(a[k].morsels[m].end, b[k].morsels[m].end);
    }
  }
}

// ---------------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------------

TEST(WorkStealingSchedulerTest, RunsEveryMorselExactlyOnce) {
  const std::vector<uint64_t> counts = {1000, 1, 0, 512, 7, 7, 7, 2048};
  auto chains = BuildChains(counts, Opts(4, 64), /*independent=*/false);

  std::mutex mu;
  std::map<uint32_t, std::vector<std::pair<uint64_t, uint64_t>>> seen;
  WorkStealingScheduler sched(Opts(4, 64), [] { return 0.0; });
  sched.Run(std::move(chains), [&](uint32_t, const Morsel& m) {
    std::lock_guard<std::mutex> lock(mu);
    seen[m.partition].push_back({m.begin, m.end});
  });

  for (uint32_t i = 0; i < counts.size(); ++i) {
    const auto& ranges = seen[i];
    ASSERT_FALSE(ranges.empty()) << "partition " << i;
    // Chained morsels arrive in order (single owner at a time), so the
    // recorded ranges must tile [0, counts[i]) left to right with no
    // duplicate and no gap.
    uint64_t expect_begin = 0;
    for (const auto& [b, e] : ranges) {
      EXPECT_EQ(b, expect_begin) << "partition " << i;
      expect_begin = e;
    }
    EXPECT_EQ(expect_begin, counts[i]) << "partition " << i;
  }

  uint64_t morsels = 0, chains_run = 0;
  for (const auto& st : sched.worker_stats()) {
    morsels += st.morsels;
    chains_run += st.chains;
  }
  uint64_t expected_morsels = 0;
  for (const auto& [i, ranges] : seen) expected_morsels += ranges.size();
  EXPECT_EQ(morsels, expected_morsels);
  EXPECT_EQ(chains_run, counts.size());
}

TEST(WorkStealingSchedulerTest, StealsUnderForcedContention) {
  // Two workers. LPT seeding deals the two big chains to different deques
  // and alternates the eight small ones between them. The big chain on
  // worker 0 (partition 0) blocks until every small chain has run — which
  // can only happen if worker 1, after draining its own deque, STEALS the
  // small chains still parked behind the blocked chain on worker 0's deque.
  constexpr uint32_t kSmall = 8;
  std::atomic<uint32_t> smalls_done{0};

  std::vector<MorselChain> chains;
  chains.push_back(MorselChain{0, 100, kAnyNode, {Morsel{0, 0, 1}}});  // blocker
  chains.push_back(MorselChain{1, 100, kAnyNode, {Morsel{1, 0, 1}}});
  for (uint32_t p = 2; p < 2 + kSmall; ++p) {
    chains.push_back(MorselChain{p, 1, kAnyNode, {Morsel{p, 0, 1}}});
  }

  WorkStealingScheduler sched(Opts(2, 64), [] { return 0.0; });
  sched.Run(std::move(chains), [&](uint32_t, const Morsel& m) {
    if (m.partition == 0) {
      while (smalls_done.load(std::memory_order_acquire) < kSmall) {
        std::this_thread::yield();
      }
    } else if (m.partition >= 2) {
      smalls_done.fetch_add(1, std::memory_order_release);
    }
  });

  const auto& stats = sched.worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  uint64_t steals = 0, morsels = 0;
  for (const auto& st : stats) {
    steals += st.steals;
    morsels += st.morsels;
  }
  EXPECT_EQ(morsels, 2u + kSmall);  // everything ran exactly once
  EXPECT_GE(steals, 1u);            // and at least one take was a steal
}

TEST(WorkStealingSchedulerTest, SingleWorkerRunsInlineLargestFirst) {
  std::vector<MorselChain> chains;
  chains.push_back(MorselChain{0, 1, kAnyNode, {Morsel{0, 0, 1}}});
  chains.push_back(MorselChain{1, 50, kAnyNode, {Morsel{1, 0, 50}}});
  chains.push_back(MorselChain{2, 7, kAnyNode, {Morsel{2, 0, 7}}});

  std::vector<uint32_t> order;
  WorkStealingScheduler sched(Opts(1, 64), [] { return 0.0; });
  sched.Run(std::move(chains), [&](uint32_t w, const Morsel& m) {
    EXPECT_EQ(w, 0u);
    order.push_back(m.partition);
  });
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 2, 0}));
  EXPECT_EQ(sched.worker_stats()[0].steals, 0u);
}

// ---------------------------------------------------------------------------
// End to end: determinism across schedules and worker counts
// ---------------------------------------------------------------------------

class SchedulerJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir_ = ::testing::TempDir() + "sched_" + std::to_string(::getpid()) +
           "_" + name;
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  static rel::RelationConfig Skewed(uint64_t n, uint32_t d) {
    rel::RelationConfig rc;
    rc.r_objects = rc.s_objects = n;
    rc.num_partitions = d;
    rc.zipf_theta = 0.9;  // Zipf-skewed S-pointer targets
    rc.seed = 20260806;
    return rc;
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
};

TEST_F(SchedulerJoinTest, IdenticalJoinAcrossWorkersAndSchedules) {
  // D = 8 partitions, skewed; tiny morsels so stealing actually decomposes
  // the passes. Every (schedule, workers) combination must produce the
  // same verified count and checksum — bit-determinism is the contract.
  const rel::RelationConfig rc = Skewed(16384, 8);
  auto workload = mm::BuildMmWorkload(mgr_.get(), "det", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  struct Config {
    Schedule schedule;
    uint32_t workers;
  };
  const Config configs[] = {
      {Schedule::kStatic, 1},   {Schedule::kStatic, 8},
      {Schedule::kStealing, 1}, {Schedule::kStealing, 2},
      {Schedule::kStealing, 8},
  };

  uint64_t count = 0, checksum = 0;
  bool first = true;
  for (const Config& cfg : configs) {
    mm::MmJoinOptions options;
    options.schedule = cfg.schedule;
    options.max_threads = cfg.workers;
    options.morsel_tuples = 256;
    auto result = mm::MmNestedLoops(*workload, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->verified)
        << exec::ScheduleName(cfg.schedule) << " x" << cfg.workers;
    if (first) {
      count = result->output_count;
      checksum = result->output_checksum;
      first = false;
    } else {
      EXPECT_EQ(result->output_count, count)
          << exec::ScheduleName(cfg.schedule) << " x" << cfg.workers;
      EXPECT_EQ(result->output_checksum, checksum)
          << exec::ScheduleName(cfg.schedule) << " x" << cfg.workers;
    }
    if (cfg.schedule == Schedule::kStealing && cfg.workers > 1) {
      EXPECT_GT(result->run.sched_morsels, 0u);
    } else {
      EXPECT_EQ(result->run.sched_steals, 0u);
    }
  }
}

TEST_F(SchedulerJoinTest, GraceIdenticalAcrossSchedules) {
  const rel::RelationConfig rc = Skewed(8192, 8);
  auto workload = mm::BuildMmWorkload(mgr_.get(), "grace", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  mm::MmJoinOptions stat;
  stat.schedule = Schedule::kStatic;
  stat.max_threads = 4;
  auto a = mm::MmGrace(*workload, stat);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  mm::MmJoinOptions steal;
  steal.schedule = Schedule::kStealing;
  steal.max_threads = 4;
  steal.morsel_tuples = 128;
  auto b = mm::MmGrace(*workload, steal);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_TRUE(a->verified && b->verified);
  EXPECT_EQ(a->output_count, b->output_count);
  EXPECT_EQ(a->output_checksum, b->output_checksum);
}

TEST_F(SchedulerJoinTest, SkewedStealingRunMatchesSimulator) {
  // The stealing real run must still reproduce the deterministic costed
  // simulator's join on a skewed D = 8 workload — the cross-backend
  // equivalence cannot be a property of the static schedule only.
  const rel::RelationConfig rc = Skewed(12000, 8);

  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  mc.num_disks = rc.num_partitions;
  sim::SimEnv env(mc);
  auto sim_workload = rel::BuildWorkload(&env, rc);
  ASSERT_TRUE(sim_workload.ok()) << sim_workload.status().ToString();
  auto sim_result =
      join::RunNestedLoops(&env, *sim_workload, join::JoinParams{});
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();

  auto workload = mm::BuildMmWorkload(mgr_.get(), "xval", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  mm::MmJoinOptions options;
  options.schedule = Schedule::kStealing;
  options.max_threads = 4;
  options.morsel_tuples = 512;
  auto real_result = mm::MmNestedLoops(*workload, options);
  ASSERT_TRUE(real_result.ok()) << real_result.status().ToString();

  EXPECT_TRUE(sim_result->verified && real_result->verified);
  EXPECT_EQ(sim_result->output_count, real_result->output_count);
  EXPECT_EQ(sim_result->output_checksum, real_result->output_checksum);
}

}  // namespace
}  // namespace mmjoin
