// MPSM identity matrix (EXT-9): the NUMA-affine massively-parallel
// sort-merge driver must produce the IDENTICAL join — same verified
// output_count, same order-independent output_checksum, same pass
// structure — as the shared-run sort-merge driver across every
// combination of schedule {static, stealing} x workers {1, 2, 8} x NUMA
// mode {none, interleave, local} on both a uniform and a Zipf-skewed
// workload. MPSM is a different decomposition of the same join (node
// bands, strictly node-local sorts, cross-band merge), so any divergence
// is a partitioning or merge bug, never acceptable drift.
//
// The forced-topology tests pin MmJoinOptions::numa_nodes: 1 exercises
// the documented single-node fallback (one band, zero remote slices) and
// >1 forces the multi-band control flow even on the single-node CI host
// (placement syscalls stay capped at the detected topology, so no mbind
// errors leak from the forcing).
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/scheduler.h"
#include "join/join_common.h"
#include "join/mpsm.h"
#include "join/sort_merge.h"
#include "mmap/mm_relation.h"
#include "mmap/mmap_join.h"
#include "mmap/segment_manager.h"
#include "rel/generator.h"
#include "sim/sim_env.h"

namespace mmjoin {
namespace {

rel::RelationConfig Shape(uint64_t n, uint32_t d, double theta,
                          uint64_t seed) {
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = n;
  rc.num_partitions = d;
  rc.zipf_theta = theta;
  rc.seed = seed;
  return rc;
}

class MpsmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string test_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : test_name) {
      if (c == '/') c = '_';
    }
    dir_ = ::testing::TempDir() + "mpsm_" + std::to_string(::getpid()) + "_" +
           test_name;
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
};

/// Asserts one mpsm run against the sort-merge baseline on the same
/// workload: verified, bit-identical output, and the same pass labels
/// (both drivers report setup/pass0/pass1/sort+merge+join).
void ExpectSameJoin(const mm::MmJoinResult& sm, const mm::MmJoinResult& mp,
                    const std::string& what) {
  EXPECT_TRUE(sm.verified) << what;
  EXPECT_TRUE(mp.verified) << what;
  EXPECT_EQ(sm.output_count, mp.output_count) << what;
  EXPECT_EQ(sm.output_checksum, mp.output_checksum) << what;
  ASSERT_EQ(sm.run.passes.size(), mp.run.passes.size()) << what;
  for (size_t p = 0; p < sm.run.passes.size(); ++p) {
    EXPECT_EQ(sm.run.passes[p].label, mp.run.passes[p].label) << what;
  }
}

TEST_F(MpsmTest, IdentityMatrixUniform) {
  const rel::RelationConfig rc = Shape(8192, 4, 0.0, 20260809);
  auto workload = mm::BuildMmWorkload(mgr_.get(), "u", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  auto sm = mm::MmSortMerge(*workload, mm::MmJoinOptions{});
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();

  const exec::Schedule schedules[] = {exec::Schedule::kStatic,
                                      exec::Schedule::kStealing};
  const uint32_t worker_counts[] = {1, 2, 8};
  const exec::NumaMode numa_modes[] = {exec::NumaMode::kNone,
                                       exec::NumaMode::kInterleave,
                                       exec::NumaMode::kLocal};
  for (exec::Schedule sched : schedules) {
    for (uint32_t workers : worker_counts) {
      for (exec::NumaMode numa : numa_modes) {
        mm::MmJoinOptions opt;
        opt.schedule = sched;
        opt.max_threads = workers;
        opt.numa = numa;
        auto mp = mm::MmMpsm(*workload, opt);
        ASSERT_TRUE(mp.ok()) << mp.status().ToString();
        const std::string what =
            "schedule=" +
            std::to_string(static_cast<int>(sched)) +
            " workers=" + std::to_string(workers) +
            " numa=" + std::to_string(static_cast<int>(numa));
        ExpectSameJoin(*sm, *mp, what);
        // The driver always reports its band shape, fallback included.
        EXPECT_GE(mp->run.mpsm_nodes, 1u) << what;
        EXPECT_GE(mp->run.mpsm_runs, 1u) << what;
      }
    }
  }
}

TEST_F(MpsmTest, IdentityMatrixZipfSkew) {
  const rel::RelationConfig rc = Shape(8192, 4, 0.9, 991);
  auto workload = mm::BuildMmWorkload(mgr_.get(), "z", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  auto sm = mm::MmSortMerge(*workload, mm::MmJoinOptions{});
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();

  const exec::Schedule schedules[] = {exec::Schedule::kStatic,
                                      exec::Schedule::kStealing};
  const uint32_t worker_counts[] = {1, 2, 8};
  for (exec::Schedule sched : schedules) {
    for (uint32_t workers : worker_counts) {
      mm::MmJoinOptions opt;
      opt.schedule = sched;
      opt.max_threads = workers;
      opt.numa = exec::NumaMode::kLocal;
      auto mp = mm::MmMpsm(*workload, opt);
      ASSERT_TRUE(mp.ok()) << mp.status().ToString();
      ExpectSameJoin(*sm, *mp,
                     "zipf schedule=" +
                         std::to_string(static_cast<int>(sched)) +
                         " workers=" + std::to_string(workers));
    }
  }
}

TEST_F(MpsmTest, SimBackendMatchesSortMerge) {
  // The same template runs on the simulated backend: identical output
  // and pass labels there too (and deterministically, since simulated
  // time has no scheduling noise).
  const rel::RelationConfig rc = Shape(6000, 3, 0.5, 1234);
  sim::MachineConfig mc = sim::MachineConfig::SequentSymmetry1996();
  mc.num_disks = rc.num_partitions;
  sim::SimEnv env(mc);
  auto workload = rel::BuildWorkload(&env, rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  auto sm = join::RunSortMerge(&env, *workload, join::JoinParams{});
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  auto mp = join::RunMpsm(&env, *workload, join::JoinParams{});
  ASSERT_TRUE(mp.ok()) << mp.status().ToString();

  EXPECT_TRUE(sm->verified && mp->verified);
  EXPECT_EQ(sm->output_count, mp->output_count);
  EXPECT_EQ(sm->output_checksum, mp->output_checksum);
  ASSERT_EQ(sm->passes.size(), mp->passes.size());
  for (size_t p = 0; p < sm->passes.size(); ++p) {
    EXPECT_EQ(sm->passes[p].label, mp->passes[p].label);
  }
  EXPECT_GE(mp->mpsm_nodes, 1u);
}

TEST_F(MpsmTest, ForcedSingleNodeFallback) {
  // numa_nodes=1 pins the documented fallback: one band, every merge
  // slice is home-band local, and the join is still bit-identical.
  const rel::RelationConfig rc = Shape(4096, 4, 0.0, 555);
  auto workload = mm::BuildMmWorkload(mgr_.get(), "f1", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  auto sm = mm::MmSortMerge(*workload, mm::MmJoinOptions{});
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();

  mm::MmJoinOptions opt;
  opt.numa = exec::NumaMode::kLocal;
  opt.numa_nodes = 1;
  auto mp = mm::MmMpsm(*workload, opt);
  ASSERT_TRUE(mp.ok()) << mp.status().ToString();
  ExpectSameJoin(*sm, *mp, "forced single node");
  EXPECT_EQ(mp->run.mpsm_nodes, 1u);
  EXPECT_EQ(mp->run.mpsm_remote_slices, 0u);
}

TEST_F(MpsmTest, ForcedMultiBandOnAnyHost) {
  // numa_nodes=4 forces the multi-band control flow regardless of the
  // host's real topology — band partitioning, node-local sorts and the
  // per-partition slice merge all engage (this is how a single-node CI
  // host exercises the interesting path). Placement syscalls stay capped
  // at the DETECTED topology, so forcing must not surface mbind errors.
  const rel::RelationConfig rc = Shape(8192, 8, 0.9, 777);
  auto workload = mm::BuildMmWorkload(mgr_.get(), "f4", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  auto sm = mm::MmSortMerge(*workload, mm::MmJoinOptions{});
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();

  mm::MmJoinOptions opt;
  opt.numa = exec::NumaMode::kLocal;
  opt.numa_nodes = 4;
  opt.max_threads = 8;
  auto mp = mm::MmMpsm(*workload, opt);
  ASSERT_TRUE(mp.ok()) << mp.status().ToString();
  ExpectSameJoin(*sm, *mp, "forced 4 bands");
  EXPECT_EQ(mp->run.mpsm_nodes, 4u);
  // Every partition found at least one home-band slice...
  EXPECT_GE(mp->run.mpsm_local_slices, rc.num_partitions);
  // ...and NONE came from a remote band: pass 0's key-range banding
  // localizes every partition's merge inputs by construction (all
  // cross-node traffic rides the pass-0 scatter), so the remote counter
  // is a misalignment guard that must stay zero.
  EXPECT_EQ(mp->run.mpsm_remote_slices, 0u);
  EXPECT_TRUE(mp->numa_status.ok()) << mp->numa_status.ToString();
}

TEST_F(MpsmTest, ForcedBandsNeverExceedPartitions) {
  // More forced nodes than partitions: the driver clamps bands to D (a
  // band with no source partitions would sort nothing and merge nothing).
  const rel::RelationConfig rc = Shape(2048, 2, 0.0, 31);
  auto workload = mm::BuildMmWorkload(mgr_.get(), "clamp", rc);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  auto sm = mm::MmSortMerge(*workload, mm::MmJoinOptions{});
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();

  mm::MmJoinOptions opt;
  opt.numa = exec::NumaMode::kLocal;
  opt.numa_nodes = 16;
  auto mp = mm::MmMpsm(*workload, opt);
  ASSERT_TRUE(mp.ok()) << mp.status().ToString();
  ExpectSameJoin(*sm, *mp, "clamped bands");
  EXPECT_LE(mp->run.mpsm_nodes, rc.num_partitions);
}

}  // namespace
}  // namespace mmjoin
