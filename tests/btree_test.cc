// The persistent B+-tree on the mmap substrate: structural invariants,
// differential testing against std::map, and persistence across remapping.
#include "mmap/btree.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <map>
#include <string>

#include "util/random.h"

namespace mmjoin::mm {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = ::testing::TempDir() + "btree_" + std::to_string(::getpid()) +
           "_" + std::to_string(counter++);
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    path_ = dir_ + "/tree.seg";
  }

  Segment MakeSegment(uint64_t bytes = 16 << 20) {
    auto seg = Segment::Create(path_, bytes);
    EXPECT_TRUE(seg.ok()) << seg.status().ToString();
    return std::move(seg).value();
  }

  std::string dir_, path_;
};

TEST_F(BTreeTest, EmptyTree) {
  Segment seg = MakeSegment();
  auto tree = BTree::Create(&seg);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_EQ(tree->Find(42).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(tree->Validate().ok());
}

TEST_F(BTreeTest, InsertAndFindFew) {
  Segment seg = MakeSegment();
  auto tree = BTree::Create(&seg);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k : {5ull, 1ull, 9ull, 3ull}) {
    ASSERT_TRUE(tree->Insert(k, k * 10).ok());
  }
  EXPECT_EQ(tree->size(), 4u);
  for (uint64_t k : {5ull, 1ull, 9ull, 3ull}) {
    auto v = tree->Find(k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, k * 10);
  }
  EXPECT_FALSE(tree->Find(2).ok());
  EXPECT_TRUE(tree->Validate().ok());
}

TEST_F(BTreeTest, UpdateInPlace) {
  Segment seg = MakeSegment();
  auto tree = BTree::Create(&seg);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(7, 1).ok());
  ASSERT_TRUE(tree->Insert(7, 2).ok());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_EQ(*tree->Find(7), 2u);
}

TEST_F(BTreeTest, SplitsGrowHeight) {
  Segment seg = MakeSegment();
  auto tree = BTree::Create(&seg);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree->Insert(k, k).ok());
  }
  EXPECT_EQ(tree->size(), 1000u);
  EXPECT_GT(tree->height(), 2u);
  EXPECT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
}

class BTreeSweepTest : public BTreeTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(BTreeSweepTest, MatchesStdMapUnderRandomWorkload) {
  Segment seg = MakeSegment();
  auto tree = BTree::Create(&seg);
  ASSERT_TRUE(tree.ok());
  Rng rng(GetParam());
  std::map<uint64_t, uint64_t> model;
  const int ops = 4000;
  for (int op = 0; op < ops; ++op) {
    const uint64_t key = rng.Uniform(700);  // collisions guaranteed
    const int action = static_cast<int>(rng.Uniform(10));
    if (action < 6) {  // insert/update
      const uint64_t value = rng.Next();
      ASSERT_TRUE(tree->Insert(key, value).ok());
      model[key] = value;
    } else if (action < 8) {  // erase
      const Status st = tree->Erase(key);
      EXPECT_EQ(st.ok(), model.erase(key) > 0);
    } else {  // lookup
      auto v = tree->Find(key);
      auto it = model.find(key);
      ASSERT_EQ(v.ok(), it != model.end());
      if (v.ok()) {
        EXPECT_EQ(*v, it->second);
      }
    }
  }
  EXPECT_EQ(tree->size(), model.size());
  // Full-range scan equals in-order model traversal.
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  tree->Scan(0, UINT64_MAX,
             [&](uint64_t k, uint64_t v) { scanned.emplace_back(k, v); });
  ASSERT_EQ(scanned.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(scanned[i].first, k);
    EXPECT_EQ(scanned[i].second, v);
    ++i;
  }
  EXPECT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeSweepTest, ::testing::Values(1, 2, 3, 7));

TEST_F(BTreeTest, RangeScanSubrange) {
  Segment seg = MakeSegment();
  auto tree = BTree::Create(&seg);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 500; k += 5) {
    ASSERT_TRUE(tree->Insert(k, k).ok());
  }
  std::vector<uint64_t> keys;
  const uint64_t n =
      tree->Scan(100, 200, [&](uint64_t k, uint64_t) { keys.push_back(k); });
  EXPECT_EQ(n, 21u);  // 100,105,...,200
  EXPECT_EQ(keys.front(), 100u);
  EXPECT_EQ(keys.back(), 200u);
  EXPECT_EQ(tree->Scan(201, 204, [](uint64_t, uint64_t) {}), 0u);
  EXPECT_EQ(tree->Scan(10, 5, [](uint64_t, uint64_t) {}), 0u);  // lo > hi
}

TEST_F(BTreeTest, PersistsAcrossRemap) {
  {
    Segment seg = MakeSegment();
    auto tree = BTree::Create(&seg);
    ASSERT_TRUE(tree.ok());
    for (uint64_t k = 0; k < 2000; ++k) {
      ASSERT_TRUE(tree->Insert(k * 3, k).ok());
    }
    ASSERT_TRUE(seg.Sync().ok());
  }  // unmapped
  {
    auto seg = Segment::Open(path_);
    ASSERT_TRUE(seg.ok());
    auto tree = BTree::Attach(&*seg);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_EQ(tree->size(), 2000u);
    EXPECT_TRUE(tree->Validate().ok());
    for (uint64_t k = 0; k < 2000; k += 97) {
      auto v = tree->Find(k * 3);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, k);
    }
    EXPECT_FALSE(tree->Find(1).ok());
  }
}

TEST_F(BTreeTest, AttachFailsOnEmptySegment) {
  Segment seg = MakeSegment(1 << 20);
  auto tree = BTree::Attach(&seg);
  EXPECT_EQ(tree.status().code(), StatusCode::kNotFound);
}

TEST_F(BTreeTest, DescendingAndAscendingInsertsBothBalance) {
  for (bool descending : {false, true}) {
    const std::string p = path_ + (descending ? ".d" : ".a");
    auto seg = Segment::Create(p, 16 << 20);
    ASSERT_TRUE(seg.ok());
    auto tree = BTree::Create(&*seg);
    ASSERT_TRUE(tree.ok());
    for (uint64_t i = 0; i < 3000; ++i) {
      const uint64_t k = descending ? 3000 - i : i;
      ASSERT_TRUE(tree->Insert(k, k).ok());
    }
    EXPECT_TRUE(tree->Validate().ok()) << tree->Validate().ToString();
    // Height stays logarithmic: 3000 keys at fanout >= 8 fits in 5 levels.
    EXPECT_LE(tree->height(), 5u);
  }
}

TEST_F(BTreeTest, SegmentExhaustionSurfacesAsError) {
  Segment seg = MakeSegment(8192);  // room for only a handful of nodes
  auto tree = BTree::Create(&seg);
  ASSERT_TRUE(tree.ok());
  Status last;
  for (uint64_t k = 0; k < 10000 && last.ok(); ++k) {
    last = tree->Insert(k, k);
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace mmjoin::mm
