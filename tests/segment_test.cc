// Real mmap(2) single-level store: exact positioning, persistence across
// unmap/remap, and the newMap/openMap/deleteMap primitives.
#include "mmap/segment.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <string>

namespace mmjoin::mm {
namespace {

class SegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "seg_test_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(SegmentTest, CreateWriteReopenRead) {
  const std::string path = Path("a");
  {
    auto seg = Segment::Create(path, 1 << 20);
    ASSERT_TRUE(seg.ok()) << seg.status().ToString();
    auto off = seg->Allocate(64);
    ASSERT_TRUE(off.ok());
    std::memcpy(seg->Resolve(*off), "hello persistent world", 23);
    seg->set_root(*off);
    ASSERT_TRUE(seg->Sync().ok());
    ASSERT_TRUE(seg->Close().ok());
  }
  {
    auto seg = Segment::Open(path);
    ASSERT_TRUE(seg.ok()) << seg.status().ToString();
    ASSERT_NE(seg->root(), 0u);
    EXPECT_STREQ(static_cast<const char*>(seg->Resolve(seg->root())),
                 "hello persistent world");
  }
  ASSERT_TRUE(Segment::Delete(path).ok());
}

TEST_F(SegmentTest, CreateFailsIfExists) {
  const std::string path = Path("dup");
  auto a = Segment::Create(path, 65536);
  ASSERT_TRUE(a.ok());
  auto b = Segment::Create(path, 65536);
  EXPECT_EQ(b.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(SegmentTest, OpenMissingFails) {
  auto seg = Segment::Open(Path("nope"));
  EXPECT_EQ(seg.status().code(), StatusCode::kNotFound);
}

TEST_F(SegmentTest, DeleteMissingFails) {
  EXPECT_EQ(Segment::Delete(Path("nope")).code(), StatusCode::kNotFound);
}

TEST_F(SegmentTest, TooSmallRejected) {
  auto seg = Segment::Create(Path("tiny"), sizeof(SegmentHeader));
  EXPECT_EQ(seg.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SegmentTest, AllocateExhaustsAndAligns) {
  auto seg = Segment::Create(Path("full"), sizeof(SegmentHeader) + 64);
  ASSERT_TRUE(seg.ok());
  auto a = seg->Allocate(10);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a % 8, 0u);
  auto b = seg->Allocate(10);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b % 8, 0u);
  EXPECT_GT(*b, *a);
  auto c = seg->Allocate(1000);
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
}

struct Node {
  int value = 0;
  VPtr<Node> next;
};

TEST_F(SegmentTest, VPtrLinkedListSurvivesRemap) {
  const std::string path = Path("list");
  {
    auto seg = Segment::Create(path, 1 << 20);
    ASSERT_TRUE(seg.ok());
    // Build 1 -> 2 -> 3 with offset-valued pointers ("exact positioning":
    // nothing to swizzle when the segment moves).
    VPtr<Node> head;
    for (int v = 3; v >= 1; --v) {
      auto node = seg->New<Node>();
      ASSERT_TRUE(node.ok());
      node->get(*seg)->value = v;
      node->get(*seg)->next = head;
      head = *node;
    }
    seg->set_root(head.offset());
    ASSERT_TRUE(seg->Sync().ok());
  }
  {
    auto seg = Segment::Open(path);
    ASSERT_TRUE(seg.ok());
    VPtr<Node> cur(seg->root());
    std::vector<int> values;
    while (cur) {
      values.push_back(cur.get(*seg)->value);
      cur = cur.get(*seg)->next;
    }
    EXPECT_EQ(values, (std::vector<int>{1, 2, 3}));
  }
}

TEST_F(SegmentTest, VPtrNullSemantics) {
  VPtr<Node> null;
  EXPECT_TRUE(null.null());
  EXPECT_FALSE(null);
  auto seg = Segment::Create(Path("null"), 65536);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(null.get(*seg), nullptr);
}

TEST_F(SegmentTest, TimingsAccumulate) {
  MapTimings t;
  auto seg = Segment::Create(Path("timed"), 1 << 20, &t);
  ASSERT_TRUE(seg.ok());
  EXPECT_GT(t.new_map_s, 0.0);
  ASSERT_TRUE(seg->Close().ok());
  auto seg2 = Segment::Open(Path("timed"), &t);
  ASSERT_TRUE(seg2.ok());
  EXPECT_GT(t.open_map_s, 0.0);
  ASSERT_TRUE(seg2->Close().ok());
  ASSERT_TRUE(Segment::Delete(Path("timed"), &t).ok());
  EXPECT_GT(t.delete_map_s, 0.0);
}

TEST_F(SegmentTest, MoveTransfersOwnership) {
  auto seg = Segment::Create(Path("move"), 65536);
  ASSERT_TRUE(seg.ok());
  Segment moved = std::move(*seg);
  EXPECT_TRUE(moved.mapped());
  EXPECT_FALSE(seg->mapped());
  auto off = moved.Allocate(8);
  EXPECT_TRUE(off.ok());
}

TEST_F(SegmentTest, CorruptHeaderRejected) {
  const std::string path = Path("corrupt");
  {
    auto seg = Segment::Create(path, 65536);
    ASSERT_TRUE(seg.ok());
    seg->header()->magic = 0xdeadbeef;
    ASSERT_TRUE(seg->Sync().ok());
  }
  auto seg = Segment::Open(path);
  EXPECT_EQ(seg.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace mmjoin::mm
