// Durable-store round trips and crash recovery.
//
// The contract under test (mm_relation.h, segment.h): PersistMmWorkload
// seals every segment — data and index first, manifest LAST — with a
// generation + checksum header, and OpenMmWorkload reattaches through the
// verifying path. A clean store must reopen to the bit-identical join; a
// torn store (byte flip, or a process SIGKILLed mid-persist via the
// MMJOIN_PERSIST_CRASH hook) must be *refused* with a checksum error, not
// partially trusted.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "mmap/btree.h"
#include "mmap/mm_relation.h"
#include "mmap/mmap_join.h"
#include "mmap/segment.h"
#include "mmap/segment_manager.h"
#include "rel/generator.h"

namespace mmjoin {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string test_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : test_name) {
      if (c == '/') c = '_';
    }
    dir_ = ::testing::TempDir() + "persist_" + std::to_string(::getpid()) +
           "_" + test_name;
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  static rel::RelationConfig Shape(uint64_t n, uint32_t d, double theta,
                                   uint64_t seed) {
    rel::RelationConfig rc;
    rc.r_objects = rc.s_objects = n;
    rc.num_partitions = d;
    rc.zipf_theta = theta;
    rc.seed = seed;
    return rc;
  }

  /// Builds + persists a store under `prefix`, returning the original
  /// workload (still mapped) for the "before" join.
  StatusOr<mm::MmWorkload> BuildStore(const rel::RelationConfig& rc,
                                      const std::string& prefix,
                                      mm::MsyncPolicy policy) {
    auto workload = mm::BuildMmWorkload(mgr_.get(), prefix, rc);
    if (!workload.ok()) return workload.status();
    MMJOIN_RETURN_NOT_OK(
        mm::PersistMmWorkload(mgr_.get(), prefix, &*workload, policy));
    return workload;
  }

  /// Flips one byte of the named segment file at `offset` on disk.
  void FlipByte(const std::string& name, uint64_t offset) {
    const std::string path = mgr_->PathFor(name);
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
};

TEST_F(PersistenceTest, RoundTripIdenticalJoin) {
  // Matrix: shapes x msync policies. Every cell must reopen from disk to
  // the same verified join the freshly built workload produced.
  struct Cell {
    rel::RelationConfig rc;
    mm::MsyncPolicy policy;
    const char* prefix;
  };
  const Cell cells[] = {
      {Shape(4096, 2, 0.0, 11), mm::MsyncPolicy::kNone, "rt_none"},
      {Shape(6000, 3, 0.7, 22), mm::MsyncPolicy::kAsync, "rt_async"},
      {Shape(2048, 2, 0.9, 33), mm::MsyncPolicy::kSync, "rt_sync"},
  };
  for (const Cell& cell : cells) {
    SCOPED_TRACE(cell.prefix);
    auto built = BuildStore(cell.rc, cell.prefix, cell.policy);
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    auto before = mm::MmGrace(*built);
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    ASSERT_TRUE(before->verified);

    // Drop every mapping, then reattach purely from disk.
    built = Status::NotFound("dropped");
    auto reopened = mm::OpenMmWorkload(mgr_.get(), cell.prefix);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened->config.r_objects, cell.rc.r_objects);
    EXPECT_EQ(reopened->config.num_partitions, cell.rc.num_partitions);

    auto after = mm::MmGrace(*reopened);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_TRUE(after->verified);
    EXPECT_EQ(before->output_count, after->output_count);
    EXPECT_EQ(before->output_checksum, after->output_checksum);
  }
}

TEST_F(PersistenceTest, ReopenedStoreRunsEveryDriver) {
  // The reopened workload is a full MmWorkload: all five drivers run and
  // verify against the persisted oracle expectations.
  const rel::RelationConfig rc = Shape(4096, 2, 0.5, 44);
  auto built = BuildStore(rc, "drv", mm::MsyncPolicy::kNone);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  built = Status::NotFound("dropped");

  auto w = mm::OpenMmWorkload(mgr_.get(), "drv");
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  for (auto* fn : {&mm::MmNestedLoops, &mm::MmSortMerge, &mm::MmGrace,
                   &mm::MmHybridHash, &mm::MmIndexNestedLoops}) {
    auto result = fn(*w, mm::MmJoinOptions{});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->verified);
    EXPECT_EQ(result->output_count, w->expected_output_count);
    EXPECT_EQ(result->output_checksum, w->expected_checksum);
  }
  // The warm probe — straight off the store's persisted B+-tree, no
  // partition passes — must produce the same verified join.
  auto warm = mm::MmIndexProbe(mgr_.get(), "drv", *w);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->verified);
  EXPECT_EQ(warm->output_count, w->expected_output_count);
  EXPECT_EQ(warm->output_checksum, w->expected_checksum);
  EXPECT_EQ(warm->run.index_probes, w->config.s_objects);
  EXPECT_GT(warm->run.index_entries, 0u);
}

TEST_F(PersistenceTest, JoinKeyIndexAttachesAndCovers) {
  // The persisted B+-tree maps every distinct packed S-pointer in R to
  // the offset of its `[count][r_id...]` postings run; the counts sum
  // back to |R| and every R object appears in its own key's run.
  const rel::RelationConfig rc = Shape(3000, 3, 0.8, 55);
  auto built = BuildStore(rc, "ix", mm::MsyncPolicy::kNone);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  auto ix_seg = mm::OpenMmWorkloadIndexSegment(mgr_.get(), "ix");
  ASSERT_TRUE(ix_seg.ok()) << ix_seg.status().ToString();
  auto tree = mm::BTree::Attach(&*ix_seg);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  ASSERT_TRUE(tree->Validate().ok());

  uint64_t ref_sum = 0;
  tree->Scan(0, ~0ULL, [&](uint64_t, uint64_t off) {
    const auto* post = static_cast<const uint64_t*>(ix_seg->Resolve(off));
    ref_sum += post[0];
  });
  EXPECT_EQ(ref_sum, rc.r_objects);

  // Every R object's pointer must be found, with its own id in the run.
  for (uint32_t i = 0; i < rc.num_partitions; ++i) {
    const rel::RObject* r = built->RObjects(i);
    for (uint64_t k = 0; k < built->r_count[i]; ++k) {
      auto found = tree->Find(r[k].sptr);
      ASSERT_TRUE(found.ok()) << "missing sptr at partition " << i;
      const auto* post =
          static_cast<const uint64_t*>(ix_seg->Resolve(*found));
      ASSERT_GE(post[0], 1u);
      bool present = false;
      for (uint64_t p = 1; p <= post[0]; ++p) {
        present |= post[p] == r[k].id;
      }
      EXPECT_TRUE(present) << "r_id missing from postings run";
    }
  }
}

TEST_F(PersistenceTest, IndexSurvivesProcessBoundary) {
  // Attach the persisted tree in a fork()ed child — a genuinely different
  // process image — and validate it there. Segment-relative VPtrs make
  // this work with zero relocation.
  const rel::RelationConfig rc = Shape(2000, 2, 0.3, 66);
  auto built = BuildStore(rc, "fork", mm::MsyncPolicy::kSync);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  built = Status::NotFound("dropped");
  mgr_.reset();  // child reopens everything from the directory

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: exit code communicates the failure site (0 = all good).
    mm::SegmentManager child_mgr(dir_);
    auto seg = mm::OpenMmWorkloadIndexSegment(&child_mgr, "fork");
    if (!seg.ok()) ::_exit(2);
    auto tree = mm::BTree::Attach(&*seg);
    if (!tree.ok()) ::_exit(3);
    if (!tree->Validate().ok()) ::_exit(4);
    if (tree->size() == 0) ::_exit(5);
    auto w = mm::OpenMmWorkload(&child_mgr, "fork");
    if (!w.ok()) ::_exit(6);
    auto join = mm::MmIndexNestedLoops(*w);
    if (!join.ok() || !join->verified) ::_exit(7);
    ::_exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

TEST_F(PersistenceTest, HeaderCorruptionRejected) {
  const rel::RelationConfig rc = Shape(1024, 2, 0.0, 77);
  auto built = BuildStore(rc, "hdr", mm::MsyncPolicy::kSync);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  built = Status::NotFound("dropped");

  // Flip a byte inside the checksummed header prefix (the generation
  // field), past the magic so the failure is the checksum, not the magic.
  FlipByte("hdr_meta", offsetof(mm::SegmentHeader, generation));
  auto reopened = mm::OpenMmWorkload(mgr_.get(), "hdr");
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().ToString().find("checksum"), std::string::npos)
      << reopened.status().ToString();
}

TEST_F(PersistenceTest, PayloadCorruptionRejected) {
  const rel::RelationConfig rc = Shape(1024, 2, 0.0, 88);
  auto built = BuildStore(rc, "pay", mm::MsyncPolicy::kSync);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  built = Status::NotFound("dropped");

  // Flip a data byte well inside an R segment's object array.
  FlipByte("pay_r0", sizeof(mm::SegmentHeader) + 4096 + 17);
  auto reopened = mm::OpenMmWorkload(mgr_.get(), "pay");
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().ToString().find("checksum"), std::string::npos)
      << reopened.status().ToString();
}

TEST_F(PersistenceTest, UnsealedSegmentRejected) {
  // A plain (never-sealed) segment must be refused by the sealed path even
  // though its bytes are fine — clean=0 means "no checksum to trust".
  auto seg = mgr_->CreateSegment("raw_meta", 1 << 16);
  ASSERT_TRUE(seg.ok());
  auto opened = mgr_->OpenSealedSegment("raw_meta");
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().ToString().find("checksum"), std::string::npos)
      << opened.status().ToString();
}

TEST_F(PersistenceTest, CrashMidPersistLeavesStoreRefused) {
  // The CI crash-recovery scenario, in-process: a child arms
  // MMJOIN_PERSIST_CRASH and SIGKILLs itself partway through the seal
  // sequence. The parent must find the store refused, then rebuild it and
  // get the identical verified join.
  const rel::RelationConfig rc = Shape(2048, 2, 0.5, 99);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("MMJOIN_PERSIST_CRASH", "3", 1);
    mm::SegmentManager child_mgr(dir_);
    auto workload = mm::BuildMmWorkload(&child_mgr, "torn", rc);
    if (!workload.ok()) ::_exit(2);
    (void)mm::PersistMmWorkload(&child_mgr, "torn", &*workload,
                                mm::MsyncPolicy::kSync);
    ::_exit(7);  // the hook should have killed us before this
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "exit=" << WEXITSTATUS(wstatus);
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // The manifest seals last, so the torn store must be refused...
  ASSERT_TRUE(mm::MmWorkloadStoreExists(*mgr_, "torn"));
  auto reopened = mm::OpenMmWorkload(mgr_.get(), "torn");
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().ToString().find("checksum"), std::string::npos)
      << reopened.status().ToString();

  // ...and a rebuild from scratch yields the identical verified join.
  ASSERT_TRUE(
      mm::DeleteMmWorkload(mgr_.get(), "torn", rc.num_partitions).ok());
  auto rebuilt = BuildStore(rc, "torn", mm::MsyncPolicy::kSync);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  rebuilt = Status::NotFound("dropped");
  auto w = mm::OpenMmWorkload(mgr_.get(), "torn");
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  auto join = mm::MmIndexNestedLoops(*w);
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  EXPECT_TRUE(join->verified);
}

TEST_F(PersistenceTest, GenerationAdvancesAcrossSeals) {
  // Each successful seal bumps the generation — re-persisting the same
  // store produces a strictly newer header.
  const rel::RelationConfig rc = Shape(512, 2, 0.0, 123);
  auto built = BuildStore(rc, "gen", mm::MsyncPolicy::kNone);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  auto seg = mgr_->OpenSealedSegment("gen_meta");
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  EXPECT_GE(seg->header()->generation, 1u);
  EXPECT_EQ(seg->header()->clean, 1u);
}

}  // namespace
}  // namespace mmjoin
