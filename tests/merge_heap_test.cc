#include "heap/merge_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace mmjoin {
namespace {

TEST(MergeHeapTest, InsertDeleteMinOrders) {
  MergeHeap heap(8);
  for (uint64_t k : {5ull, 1ull, 9ull, 3ull, 7ull}) {
    heap.Insert(MergeEntry{k, 0});
  }
  std::vector<uint64_t> out;
  while (!heap.empty()) out.push_back(heap.DeleteMin().key);
  EXPECT_EQ(out, (std::vector<uint64_t>{1, 3, 5, 7, 9}));
}

TEST(MergeHeapTest, DeleteInsertReplacesRoot) {
  MergeHeap heap(4);
  heap.Insert(MergeEntry{10, 0});
  heap.Insert(MergeEntry{20, 1});
  heap.Insert(MergeEntry{30, 2});
  const MergeEntry popped = heap.DeleteInsert(MergeEntry{25, 0});
  EXPECT_EQ(popped.key, 10u);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.Min().key, 20u);
}

TEST(MergeHeapTest, RunIdsTravelWithKeys) {
  MergeHeap heap(4);
  heap.Insert(MergeEntry{3, 7});
  heap.Insert(MergeEntry{1, 9});
  EXPECT_EQ(heap.DeleteMin().run, 9u);
  EXPECT_EQ(heap.DeleteMin().run, 7u);
}

// Full k-way merge property: merging k sorted runs through the heap yields
// the globally sorted sequence.
class KWayMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(KWayMergeTest, MergesSortedRuns) {
  const int k = GetParam();
  Rng rng(k * 31 + 1);
  std::vector<std::vector<uint64_t>> runs(k);
  std::vector<uint64_t> all;
  for (auto& run : runs) {
    const size_t len = rng.Uniform(200);
    run.resize(len);
    for (auto& x : run) x = rng.Uniform(10000);
    std::sort(run.begin(), run.end());
    all.insert(all.end(), run.begin(), run.end());
  }
  std::sort(all.begin(), all.end());

  MergeHeap heap(k);
  std::vector<size_t> cursor(k, 0);
  for (int g = 0; g < k; ++g) {
    if (!runs[g].empty()) {
      heap.Insert(MergeEntry{runs[g][0], static_cast<uint32_t>(g)});
      cursor[g] = 1;
    }
  }
  std::vector<uint64_t> merged;
  while (!heap.empty()) {
    const uint32_t g = heap.Min().run;
    if (cursor[g] < runs[g].size()) {
      merged.push_back(heap.DeleteInsert(
                               MergeEntry{runs[g][cursor[g]], g})
                           .key);
      ++cursor[g];
    } else {
      merged.push_back(heap.DeleteMin().key);
    }
  }
  EXPECT_EQ(merged, all);
}

INSTANTIATE_TEST_SUITE_P(FanIn, KWayMergeTest,
                         ::testing::Values(1, 2, 3, 8, 16, 64));

TEST(MergeHeapTest, CostCountersAdvance) {
  MergeHeap heap(16);
  for (uint64_t i = 16; i > 0; --i) heap.Insert(MergeEntry{i, 0});
  const HeapCost after_insert = heap.cost();
  EXPECT_GT(after_insert.compares, 0u);
  EXPECT_EQ(after_insert.transfers, 16u);
  heap.DeleteInsert(MergeEntry{100, 0});
  EXPECT_GT(heap.cost().compares, after_insert.compares);
  heap.ResetCost();
  EXPECT_EQ(heap.cost().compares, 0u);
}

TEST(MergeHeapTest, DeleteInsertCheaperThanDeletePlusInsert) {
  Rng rng(3);
  MergeHeap a(64), b(64);
  for (int i = 0; i < 64; ++i) {
    const uint64_t k = rng.Uniform(1000);
    a.Insert(MergeEntry{k, 0});
    b.Insert(MergeEntry{k, 0});
  }
  a.ResetCost();
  b.ResetCost();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = rng.Uniform(1000);
    a.DeleteInsert(MergeEntry{k, 0});
    b.DeleteMin();
    b.Insert(MergeEntry{k, 0});
  }
  EXPECT_LT(a.cost().compares, b.cost().compares);
}

TEST(MergeHeapTest, ModelLevelsMonotoneInHeapSize) {
  double prev = 0;
  for (uint64_t h : {2ull, 4ull, 16ull, 64ull, 256ull, 1024ull}) {
    const double levels = MergeHeap::ModelDeleteInsertLevels(h);
    EXPECT_GT(levels, prev);
    prev = levels;
  }
  EXPECT_EQ(MergeHeap::ModelDeleteInsertLevels(1), 0.0);
}

}  // namespace
}  // namespace mmjoin
