// Umbrella-header smoke test: include only <mmjoin/mmjoin.h> and exercise
// one entry point from every public module, end to end. Guards against the
// public API drifting out of the umbrella.
#include "mmjoin/mmjoin.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

namespace {

using namespace mmjoin;

TEST(ApiSurfaceTest, EveryModuleReachableFromUmbrella) {
  // util
  Status st = Status::OK();
  EXPECT_TRUE(st.ok());

  // disk + model measurement
  const disk::DiskGeometry geometry;
  disk::BandMeasureOptions band_options;
  band_options.area_blocks = 4000;
  band_options.band_sizes = {1, 400};
  const model::DttCurves dtt = model::MeasureDttCurves(geometry, band_options);
  EXPECT_GT(dtt.read.Ms(400), 0.0);

  // vm
  disk::DiskArray disks(1, geometry);
  vm::PageCache cache(4, vm::PolicyKind::kLru, &disks);
  EXPECT_FALSE(cache.Touch(vm::PageId{1, 0}, 0, 0, false, true).hit);

  // sim + rel + join + model prediction
  sim::MachineConfig machine = sim::MachineConfig::SequentSymmetry1996();
  sim::SimEnv env(machine);
  rel::RelationConfig relation;
  relation.r_objects = relation.s_objects = 2048;
  auto workload = rel::BuildWorkload(&env, relation);
  ASSERT_TRUE(workload.ok());
  join::JoinParams params;
  params.m_rproc_bytes = 128 << 10;
  params.m_sproc_bytes = 128 << 10;
  auto run = join::RunGrace(&env, *workload, params);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->verified);
  const auto oracle = join::OracleJoin(&env, *workload);
  EXPECT_EQ(oracle.checksum, run->output_checksum);

  model::ModelInputs inputs;
  inputs.machine = machine;
  inputs.relation = relation;
  inputs.skew = workload->skew;
  inputs.params = params;
  inputs.dtt = dtt;
  EXPECT_GT(model::Predict(join::Algorithm::kGrace, inputs).total_ms(), 0.0);
  EXPECT_GT(model::Ylru(1000, 100, 1000, 10, 500), 0.0);
  EXPECT_GT(model::ProbEmptyUrnsAtMost(10, 5, 9), 0.0);

  // mmap: segments, relations, joins, btree
  const std::string dir =
      ::testing::TempDir() + "api_surface_" + std::to_string(::getpid());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  mm::SegmentManager mgr(dir);
  {
    auto w = mm::BuildMmWorkload(&mgr, "api", relation);
    ASSERT_TRUE(w.ok());
    auto mm_run = mm::MmSortMerge(*w);
    ASSERT_TRUE(mm_run.ok());
    EXPECT_TRUE(mm_run->verified);

    auto idx_seg = mgr.CreateSegment("api_tree", 4 << 20);
    ASSERT_TRUE(idx_seg.ok());
    auto tree = mm::BTree::Create(&*idx_seg);
    ASSERT_TRUE(tree.ok());
    ASSERT_TRUE(tree->Insert(1, 2).ok());
    EXPECT_EQ(*tree->Find(1), 2u);
    EXPECT_TRUE(tree->Validate().ok());
  }
  (void)mm::DeleteMmWorkload(&mgr, "api", relation.num_partitions);
  (void)mgr.DeleteSegment("api_tree");

  // heap
  std::vector<uint64_t> v{3, 1, 2};
  HeapSort(&v, [](uint64_t a, uint64_t b) { return a < b; }, nullptr);
  EXPECT_EQ(v.front(), 1u);
  MergeHeap heap(2);
  heap.Insert(MergeEntry{1, 0});
  EXPECT_EQ(heap.Min().key, 1u);
}

}  // namespace
