// The mmjoind service stack: strict protocol round-trips for every wire
// message, admission accept/queue/reject/drain semantics, concurrent
// queries over a real unix socket producing results byte-identical to
// serial runs on a 2-worker shared pool, and the drain-on-shutdown
// contract.
#include "service/server.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "mmap/segment_manager.h"
#include "service/admission.h"
#include "service/client.h"
#include "service/protocol.h"

namespace mmjoin::svc {
namespace {

// ---------------------------------------------------------------------------
// Protocol round-trips: serialize -> strict parse -> identical fields, one
// case per wire message (docs/PROTOCOL.md documents exactly these shapes).

TEST(ProtocolTest, RequestRoundTripEveryOp) {
  Request hello;
  hello.op = RequestOp::kHello;
  hello.id = 7;
  hello.version = kProtocolVersion;

  Request reg;
  reg.op = RequestOp::kRegister;
  reg.id = 8;
  reg.name = "orders";
  reg.r_objects = 100000;
  reg.s_objects = 200000;
  reg.partitions = 16;
  reg.zipf_theta = 1.1;
  reg.seed = 42;

  Request query;
  query.op = RequestOp::kQuery;
  query.id = 9;
  query.name = "orders";
  query.algorithm = join::Algorithm::kHybridHash;
  query.priority = exec::QueryPriority::kHigh;
  query.trace = true;

  Request named;  // unregister exercises the bare name+op shape
  named.op = RequestOp::kUnregister;
  named.id = 10;
  named.name = "orders";

  Request persist;
  persist.op = RequestOp::kPersist;
  persist.id = 15;
  persist.name = "orders";
  persist.msync = "sync";

  Request load;  // load is the same name+op shape as unregister
  load.op = RequestOp::kLoad;
  load.id = 16;
  load.name = "orders";

  auto bare = [](RequestOp op, uint64_t id) {
    Request req;
    req.op = op;
    req.id = id;
    return req;
  };
  for (const Request& req :
       {hello, reg, query, named, persist, load, bare(RequestOp::kList, 11),
        bare(RequestOp::kStats, 12), bare(RequestOp::kShutdown, 13),
        bare(RequestOp::kPing, 14)}) {
    SCOPED_TRACE(RequestOpName(req.op));
    auto parsed = ParseRequest(SerializeRequest(req));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->op, req.op);
    EXPECT_EQ(parsed->id, req.id);
    EXPECT_EQ(parsed->name, req.name);
    EXPECT_EQ(parsed->r_objects, req.r_objects);
    EXPECT_EQ(parsed->s_objects, req.s_objects);
    EXPECT_EQ(parsed->partitions, req.partitions);
    EXPECT_DOUBLE_EQ(parsed->zipf_theta, req.zipf_theta);
    EXPECT_EQ(parsed->seed, req.seed);
    EXPECT_EQ(parsed->algorithm, req.algorithm);
    EXPECT_EQ(parsed->priority, req.priority);
    EXPECT_EQ(parsed->trace, req.trace);
    EXPECT_EQ(parsed->msync, req.msync);
  }
}

TEST(ProtocolTest, ResponseRoundTripEveryOp) {
  Response welcome;
  welcome.op = ResponseOp::kWelcome;
  welcome.id = 1;
  welcome.version = kProtocolVersion;

  Response registered;
  registered.op = ResponseOp::kRegistered;
  registered.id = 2;
  registered.name = "orders";
  registered.resident_bytes = 3 << 20;

  Response relations;
  relations.op = ResponseOp::kRelations;
  relations.id = 3;
  RelationInfo info;
  info.name = "orders";
  info.r_objects = 100000;
  info.s_objects = 200000;
  info.partitions = 16;
  info.zipf_theta = 1.1;
  info.seed = 42;
  info.resident_bytes = 3 << 20;
  info.pins = 2;
  info.durable = true;
  relations.relations.push_back(info);

  Response result;
  result.op = ResponseOp::kResult;
  result.id = 4;
  result.count = 123456789;
  // A checksum above 2^53 would be silently rounded as a JSON double —
  // the hex-string carriage must keep every bit.
  result.checksum = 0xDEADBEEFCAFEF00DULL;
  result.verified = true;
  result.exec_ms = 12.5;
  result.queue_ms = 0.25;
  result.threads = 4;
  result.algorithm = join::Algorithm::kGrace;

  Response stats;
  stats.op = ResponseOp::kStats;
  stats.id = 5;
  stats.stats.push_back(StatEntry{"svc.queries.admitted", 17});
  stats.stats.push_back(StatEntry{"svc.inflight_peak", 4});

  Response unregistered;
  unregistered.op = ResponseOp::kUnregistered;
  unregistered.id = 6;
  unregistered.name = "orders";

  Response error;
  error.op = ResponseOp::kError;
  error.id = 7;
  error.error = ErrorCode::kOverloaded;
  error.message = "admission queue full (16 waiting)";
  error.retry_after_ms = 250;

  Response draining;
  draining.op = ResponseOp::kDraining;
  draining.id = 8;

  Response pong;
  pong.op = ResponseOp::kPong;
  pong.id = 9;

  Response persisted;
  persisted.op = ResponseOp::kPersisted;
  persisted.id = 10;
  persisted.name = "orders";
  persisted.resident_bytes = 3 << 20;

  Response loaded;
  loaded.op = ResponseOp::kLoaded;
  loaded.id = 11;
  loaded.name = "orders";
  loaded.resident_bytes = 3 << 20;

  for (const Response& resp :
       {welcome, registered, relations, result, stats, unregistered, error,
        draining, pong, persisted, loaded}) {
    SCOPED_TRACE(ResponseOpName(resp.op));
    auto parsed = ParseResponse(SerializeResponse(resp));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->op, resp.op);
    EXPECT_EQ(parsed->id, resp.id);
    EXPECT_EQ(parsed->error, resp.error);
    EXPECT_EQ(parsed->message, resp.message);
    EXPECT_EQ(parsed->retry_after_ms, resp.retry_after_ms);
    EXPECT_EQ(parsed->name, resp.name);
    EXPECT_EQ(parsed->resident_bytes, resp.resident_bytes);
    EXPECT_EQ(parsed->count, resp.count);
    EXPECT_EQ(parsed->checksum, resp.checksum);
    EXPECT_EQ(parsed->verified, resp.verified);
    EXPECT_DOUBLE_EQ(parsed->exec_ms, resp.exec_ms);
    EXPECT_EQ(parsed->threads, resp.threads);
    EXPECT_EQ(parsed->algorithm, resp.algorithm);
    ASSERT_EQ(parsed->relations.size(), resp.relations.size());
    for (size_t i = 0; i < resp.relations.size(); ++i) {
      EXPECT_EQ(parsed->relations[i].name, resp.relations[i].name);
      EXPECT_EQ(parsed->relations[i].r_objects, resp.relations[i].r_objects);
      EXPECT_EQ(parsed->relations[i].pins, resp.relations[i].pins);
      EXPECT_EQ(parsed->relations[i].durable, resp.relations[i].durable);
    }
    ASSERT_EQ(parsed->stats.size(), resp.stats.size());
    for (size_t i = 0; i < resp.stats.size(); ++i) {
      EXPECT_EQ(parsed->stats[i].name, resp.stats[i].name);
      EXPECT_EQ(parsed->stats[i].value, resp.stats[i].value);
    }
  }
}

TEST(ProtocolTest, StrictParserRejectsGarbage) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("{}").ok());                       // no op
  EXPECT_FALSE(ParseRequest(R"({"op":"warp"})").ok());         // unknown op
  EXPECT_FALSE(ParseRequest(R"({"op":"ping","x":1})").ok());   // unknown field
  EXPECT_FALSE(ParseRequest(R"({"op":"ping","id":"7"})").ok());  // bad type
  EXPECT_FALSE(
      ParseRequest(R"({"op":"query","name":"r","algorithm":"quantum"})")
          .ok());
  EXPECT_FALSE(ParseResponse(R"({"op":"result","checksum":123})").ok());
  EXPECT_FALSE(ParseResponse(R"({"op":"error","error":"oops"})").ok());
}

// ---------------------------------------------------------------------------
// Admission: accept / queue / reject / drain, deterministically sequenced.

TEST(AdmissionTest, AcceptQueueRejectAndRelease) {
  AdmissionOptions opts;
  opts.max_inflight = 1;
  opts.queue_limit = 1;
  AdmissionController ctl(opts);

  double queue_ms = 0;
  uint64_t retry = 0;
  auto first = ctl.Admit(100, &queue_ms, &retry);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(ctl.inflight(), 1u);

  // Second query queues (slot taken)...
  std::atomic<bool> second_admitted{false};
  std::thread waiter([&] {
    double qms = 0;
    auto t = ctl.Admit(100, &qms, nullptr);
    ASSERT_TRUE(t.ok());
    second_admitted.store(true);
    EXPECT_GT(qms, 0.0);
  });
  while (ctl.queued() < 1) std::this_thread::yield();
  EXPECT_FALSE(second_admitted.load());

  // ...and a third overflows the queue: immediate overloaded + retry hint.
  auto third = ctl.Admit(100, &queue_ms, &retry);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(retry, 10u);

  first->Release();
  waiter.join();  // the waiter's ticket released at its scope end
  EXPECT_TRUE(second_admitted.load());
  EXPECT_EQ(ctl.inflight(), 0u);
  EXPECT_EQ(ctl.peak_inflight(), 1u);  // never more than the single slot
  EXPECT_TRUE(ctl.AwaitIdle(1.0));
}

TEST(AdmissionTest, MemoryBudgetQueuesButLoneQueryAlwaysFits) {
  AdmissionOptions opts;
  opts.max_inflight = 4;
  opts.mem_budget_bytes = 100;
  AdmissionController ctl(opts);

  // A lone over-budget query is admitted — the budget bounds concurrency
  // pressure, it is not a hard cap on query size.
  auto big = ctl.Admit(1000, nullptr, nullptr);
  ASSERT_TRUE(big.ok());

  // With the budget exhausted, the next query queues until release.
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto t = ctl.Admit(50, nullptr, nullptr);
    ASSERT_TRUE(t.ok());
    admitted.store(true);
  });
  while (ctl.queued() < 1) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  big->Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

TEST(AdmissionTest, DrainWakesWaitersAndRejectsNewWork) {
  AdmissionOptions opts;
  opts.max_inflight = 1;
  AdmissionController ctl(opts);
  auto slot = ctl.Admit(1, nullptr, nullptr);
  ASSERT_TRUE(slot.ok());

  std::atomic<bool> drained_out{false};
  std::thread waiter([&] {
    auto t = ctl.Admit(1, nullptr, nullptr);
    EXPECT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
    drained_out.store(true);
  });
  while (ctl.queued() < 1) std::this_thread::yield();

  ctl.BeginDrain();
  waiter.join();
  EXPECT_TRUE(drained_out.load());

  auto refused = ctl.Admit(1, nullptr, nullptr);
  EXPECT_FALSE(refused.ok());

  // The in-flight query finishes normally; then the service is idle.
  EXPECT_FALSE(ctl.AwaitIdle(0.05));
  slot->Release();
  EXPECT_TRUE(ctl.AwaitIdle(5.0));
}

// ---------------------------------------------------------------------------
// End to end over a real unix socket.

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "mmsvc_" + std::to_string(::getpid()) +
           "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    mgr_ = std::make_unique<mm::SegmentManager>(dir_);
  }

  void StartServer(uint32_t workers, uint32_t max_inflight,
                   bool load_store = false) {
    server_.reset();  // restart: release the old listener first
    ServerOptions opts;
    opts.socket_path = dir_ + "/svc.sock";
    opts.workers = workers;
    opts.admission.max_inflight = max_inflight;
    opts.drain_timeout_s = 30;
    opts.load_store = load_store;
    server_ = std::make_unique<Server>(mgr_.get(), opts);
    const Status st = server_->Start();
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  Client Connect() {
    Client client;
    Status st = client.Connect(server_->options().socket_path);
    EXPECT_TRUE(st.ok()) << st.ToString();
    st = client.Handshake();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return client;
  }

  Response MustCall(Client* client, const Request& req) {
    auto resp = client->Call(req);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    return resp.ok() ? *resp : Response{};
  }

  void RegisterRelation(Client* client, const std::string& name,
                        uint64_t objects) {
    Request req;
    req.op = RequestOp::kRegister;
    req.name = name;
    req.r_objects = objects;
    req.s_objects = objects;
    req.partitions = 4;
    req.seed = 7;
    const Response resp = MustCall(client, req);
    ASSERT_EQ(resp.op, ResponseOp::kRegistered)
        << ResponseOpName(resp.op) << ": " << resp.message;
    EXPECT_GT(resp.resident_bytes, 0u);
  }

  static Request QueryFor(const std::string& name, join::Algorithm a) {
    Request req;
    req.op = RequestOp::kQuery;
    req.name = name;
    req.algorithm = a;
    return req;
  }

  std::string dir_;
  std::unique_ptr<mm::SegmentManager> mgr_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServiceTest, RegisterQueryUnregisterLifecycle) {
  StartServer(/*workers=*/2, /*max_inflight=*/2);
  Client client = Connect();
  RegisterRelation(&client, "rel", 2048);

  // Duplicate registration is already_exists, not a crash or overwrite.
  {
    Request req;
    req.op = RequestOp::kRegister;
    req.name = "rel";
    req.r_objects = 1024;
    req.s_objects = 1024;
    req.partitions = 4;
    const Response resp = MustCall(&client, req);
    ASSERT_EQ(resp.op, ResponseOp::kError);
    EXPECT_EQ(resp.error, ErrorCode::kAlreadyExists);
  }

  const Response result =
      MustCall(&client, QueryFor("rel", join::Algorithm::kGrace));
  ASSERT_EQ(result.op, ResponseOp::kResult) << result.message;
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.count, 2048u);
  EXPECT_EQ(result.threads, 2u);  // the pool's shape, not the relation's D

  {
    const Response resp =
        MustCall(&client, QueryFor("nope", join::Algorithm::kGrace));
    ASSERT_EQ(resp.op, ResponseOp::kError);
    EXPECT_EQ(resp.error, ErrorCode::kNotFound);
  }

  {
    Request req;
    req.op = RequestOp::kUnregister;
    req.name = "rel";
    const Response resp = MustCall(&client, req);
    ASSERT_EQ(resp.op, ResponseOp::kUnregistered);
  }
  {
    Request req;
    req.op = RequestOp::kList;
    const Response resp = MustCall(&client, req);
    ASSERT_EQ(resp.op, ResponseOp::kRelations);
    EXPECT_TRUE(resp.relations.empty());
  }
  server_->Drain();
  server_->Stop();
}

TEST_F(ServiceTest, HelloVersionNegotiation) {
  StartServer(1, 1);
  Client client;
  ASSERT_TRUE(client.Connect(server_->options().socket_path).ok());
  Request hello;
  hello.op = RequestOp::kHello;
  hello.version = 999;
  auto resp = client.Call(hello);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->op, ResponseOp::kError);
  EXPECT_EQ(resp->error, ErrorCode::kUnsupportedVersion);
  server_->Stop();
}

TEST_F(ServiceTest, ConcurrentQueriesMatchSerialOnTwoWorkerPool) {
  StartServer(/*workers=*/2, /*max_inflight=*/2);
  Client admin = Connect();
  RegisterRelation(&admin, "uni", 4096);

  // Serial references, one per algorithm, on the otherwise-idle service.
  const join::Algorithm kAlgos[] = {
      join::Algorithm::kNestedLoops, join::Algorithm::kSortMerge,
      join::Algorithm::kGrace, join::Algorithm::kHybridHash,
      join::Algorithm::kMpsm};
  uint64_t want_count[5];
  uint64_t want_checksum[5];
  for (int i = 0; i < 5; ++i) {
    const Response resp = MustCall(&admin, QueryFor("uni", kAlgos[i]));
    ASSERT_EQ(resp.op, ResponseOp::kResult) << resp.message;
    ASSERT_TRUE(resp.verified);
    want_count[i] = resp.count;
    want_checksum[i] = resp.checksum;
  }

  // Two clients, interleaving all five algorithms concurrently on the
  // 2-worker shared pool; every result must be byte-identical to serial.
  constexpr int kReps = 6;
  std::thread clients[2];
  for (int c = 0; c < 2; ++c) {
    clients[c] = std::thread([&, c] {
      Client client = Connect();
      for (int rep = 0; rep < kReps; ++rep) {
        const int i = (rep + c * 2) % 5;  // offset so the two interleave
        auto resp = client.Call(QueryFor("uni", kAlgos[i]));
        ASSERT_TRUE(resp.ok());
        ASSERT_EQ(resp->op, ResponseOp::kResult) << resp->message;
        EXPECT_TRUE(resp->verified);
        EXPECT_EQ(resp->count, want_count[i]);
        EXPECT_EQ(resp->checksum, want_checksum[i]);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  Request stats_req;
  stats_req.op = RequestOp::kStats;
  const Response stats = MustCall(&admin, stats_req);
  ASSERT_EQ(stats.op, ResponseOp::kStats);
  uint64_t completed = 0;
  for (const StatEntry& e : stats.stats) {
    if (e.name == "svc.queries.completed") completed = e.value;
  }
  EXPECT_EQ(completed, 5u + 2 * kReps);
  server_->Drain();
  server_->Stop();
}

TEST_F(ServiceTest, ShutdownDrainsAndRefusesNewWork) {
  StartServer(2, 2);
  Client client = Connect();
  RegisterRelation(&client, "rel", 2048);

  Request shutdown;
  shutdown.op = RequestOp::kShutdown;
  const Response resp = MustCall(&client, shutdown);
  ASSERT_EQ(resp.op, ResponseOp::kDraining);
  EXPECT_TRUE(server_->WaitShutdown(5.0));

  // The connection stays open through the drain: probes still answer,
  // new queries and registrations are refused with `draining`.
  Request ping;
  ping.op = RequestOp::kPing;
  EXPECT_EQ(MustCall(&client, ping).op, ResponseOp::kPong);
  {
    const Response refused =
        MustCall(&client, QueryFor("rel", join::Algorithm::kGrace));
    ASSERT_EQ(refused.op, ResponseOp::kError);
    EXPECT_EQ(refused.error, ErrorCode::kDraining);
  }
  {
    Request req;
    req.op = RequestOp::kRegister;
    req.name = "late";
    req.r_objects = 1024;
    req.s_objects = 1024;
    req.partitions = 4;
    const Response refused = MustCall(&client, req);
    ASSERT_EQ(refused.op, ResponseOp::kError);
    EXPECT_EQ(refused.error, ErrorCode::kDraining);
  }

  EXPECT_TRUE(server_->Drain());
  server_->Stop();
}

TEST_F(ServiceTest, PersistLoadWarmRestartOverTheWire) {
  StartServer(2, 2);
  Client client = Connect();
  RegisterRelation(&client, "durable", 2048);

  // Baseline answer before the restart; index-nl exercises the sealed
  // B+-tree alongside the relation data.
  const Response before =
      MustCall(&client, QueryFor("durable", join::Algorithm::kIndexNestedLoops));
  ASSERT_EQ(before.op, ResponseOp::kResult) << before.message;
  EXPECT_TRUE(before.verified);

  // Persist of an unknown relation is not_found, not a crash.
  {
    Request req;
    req.op = RequestOp::kPersist;
    req.name = "nope";
    const Response resp = MustCall(&client, req);
    ASSERT_EQ(resp.op, ResponseOp::kError);
    EXPECT_EQ(resp.error, ErrorCode::kNotFound);
  }
  {
    Request req;
    req.op = RequestOp::kPersist;
    req.name = "durable";
    req.msync = "warp";  // unknown policy is a bad_request, not a default
    const Response resp = MustCall(&client, req);
    ASSERT_EQ(resp.op, ResponseOp::kError);
    EXPECT_EQ(resp.error, ErrorCode::kBadRequest);
  }
  {
    Request req;
    req.op = RequestOp::kPersist;
    req.name = "durable";
    req.msync = "async";
    const Response resp = MustCall(&client, req);
    ASSERT_EQ(resp.op, ResponseOp::kPersisted) << resp.message;
    EXPECT_EQ(resp.name, "durable");
    EXPECT_GT(resp.resident_bytes, 0u);
  }
  {
    Request req;
    req.op = RequestOp::kList;
    const Response resp = MustCall(&client, req);
    ASSERT_EQ(resp.relations.size(), 1u);
    EXPECT_TRUE(resp.relations[0].durable);
  }
  // Loading a name that is already registered is already_exists.
  {
    Request req;
    req.op = RequestOp::kLoad;
    req.name = "durable";
    const Response resp = MustCall(&client, req);
    ASSERT_EQ(resp.op, ResponseOp::kError);
    EXPECT_EQ(resp.error, ErrorCode::kAlreadyExists);
  }

  // "Restart the daemon": tear the server down (the catalog keeps durable
  // files on disk) and start a fresh one over the same segment root with
  // the warm-restart scan enabled.
  server_->Drain();
  server_->Stop();
  StartServer(2, 2, /*load_store=*/true);
  Client client2 = Connect();
  {
    Request req;
    req.op = RequestOp::kList;
    const Response resp = MustCall(&client2, req);
    ASSERT_EQ(resp.op, ResponseOp::kRelations);
    ASSERT_EQ(resp.relations.size(), 1u);
    EXPECT_EQ(resp.relations[0].name, "durable");
    EXPECT_TRUE(resp.relations[0].durable);
  }
  // The reloaded relation answers every driver with the pre-restart
  // result — same count and checksum, no regeneration.
  for (join::Algorithm a :
       {join::Algorithm::kGrace, join::Algorithm::kIndexNestedLoops}) {
    const Response after = MustCall(&client2, QueryFor("durable", a));
    ASSERT_EQ(after.op, ResponseOp::kResult) << after.message;
    EXPECT_TRUE(after.verified);
    EXPECT_EQ(after.count, before.count);
    EXPECT_EQ(after.checksum, before.checksum);
  }
  // Explicit unregister of a durable relation deletes the store files: a
  // third restart's scan finds nothing.
  {
    Request req;
    req.op = RequestOp::kUnregister;
    req.name = "durable";
    const Response resp = MustCall(&client2, req);
    ASSERT_EQ(resp.op, ResponseOp::kUnregistered) << resp.message;
  }
  server_->Drain();
  server_->Stop();
  StartServer(2, 2, /*load_store=*/true);
  Client client3 = Connect();
  {
    Request req;
    req.op = RequestOp::kList;
    const Response resp = MustCall(&client3, req);
    ASSERT_EQ(resp.op, ResponseOp::kRelations);
    EXPECT_TRUE(resp.relations.empty());
  }
  server_->Drain();
  server_->Stop();
}

}  // namespace
}  // namespace mmjoin::svc
