// Behavioural properties of the join executions — the paper's qualitative
// claims asserted against the instrumented runs: sequential S access in
// sort-merge and Grace, random S access in nested loops, determinism,
// accounting coherence, and the staggered-phase structure.
#include <gtest/gtest.h>

#include "join/grace.h"
#include "join/join_common.h"
#include "join/nested_loops.h"
#include "join/sort_merge.h"
#include "rel/generator.h"

namespace mmjoin::join {
namespace {

sim::MachineConfig Machine() {
  return sim::MachineConfig::SequentSymmetry1996();
}

rel::RelationConfig Relation(uint64_t n = 16384) {
  rel::RelationConfig rc;
  rc.r_objects = rc.s_objects = n;
  return rc;
}

struct ExecResult {
  JoinRunResult result;
  uint64_t sproc_read_faults;  // faults on S pages across the run
  double disk_busy_ms;
};

ExecResult Execute(Algorithm a, const rel::RelationConfig& rc,
            const JoinParams& p) {
  sim::SimEnv env(Machine());
  auto w = rel::BuildWorkload(&env, rc);
  EXPECT_TRUE(w.ok());
  uint64_t s_pages = 0;
  for (auto seg : w->s_segs) s_pages += env.segment(seg).pages();
  StatusOr<JoinRunResult> r = [&] {
    switch (a) {
      case Algorithm::kNestedLoops:
        return RunNestedLoops(&env, *w, p);
      case Algorithm::kSortMerge:
        return RunSortMerge(&env, *w, p);
      default:
        return RunGrace(&env, *w, p);
    }
  }();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->verified);
  ExecResult run;
  run.result = *r;
  run.disk_busy_ms = env.disks().TotalBusyMs();
  run.sproc_read_faults = 0;
  (void)s_pages;
  return run;
}

JoinParams Params(double mem_fraction, const rel::RelationConfig& rc) {
  JoinParams p;
  p.m_rproc_bytes = static_cast<uint64_t>(mem_fraction * rc.r_objects *
                                          sizeof(rel::RObject));
  p.m_sproc_bytes = p.m_rproc_bytes;
  return p;
}

TEST(PhaseOffsetTest, BijectionPerPhase) {
  for (uint32_t d : {1u, 2u, 3u, 4u, 8u, 16u}) {
    for (uint32_t t = 1; t < d; ++t) {
      std::vector<bool> hit(d, false);
      for (uint32_t i = 0; i < d; ++i) {
        const uint32_t j = PhaseOffset(i, t, d);
        ASSERT_LT(j, d);
        EXPECT_NE(j, i) << "a process never revisits its own partition";
        EXPECT_FALSE(hit[j]) << "two Rprocs on one S partition in a phase";
        hit[j] = true;
      }
    }
  }
}

TEST(PhaseOffsetTest, AllPartnersCoveredAcrossPhases) {
  const uint32_t d = 8;
  for (uint32_t i = 0; i < d; ++i) {
    std::vector<bool> met(d, false);
    for (uint32_t t = 1; t < d; ++t) met[PhaseOffset(i, t, d)] = true;
    for (uint32_t j = 0; j < d; ++j) {
      EXPECT_EQ(met[j], j != i);
    }
  }
}

TEST(JoinBehaviorTest, DeterministicAcrossRuns) {
  const auto rc = Relation();
  const auto p = Params(0.05, rc);
  for (auto a :
       {Algorithm::kNestedLoops, Algorithm::kSortMerge, Algorithm::kGrace}) {
    const ExecResult r1 = Execute(a, rc, p);
    const ExecResult r2 = Execute(a, rc, p);
    EXPECT_DOUBLE_EQ(r1.result.elapsed_ms, r2.result.elapsed_ms)
        << AlgorithmName(a);
    EXPECT_EQ(r1.result.faults, r2.result.faults);
    EXPECT_DOUBLE_EQ(r1.disk_busy_ms, r2.disk_busy_ms);
  }
}

TEST(JoinBehaviorTest, ElapsedIsMaxOfProcessClocks) {
  const auto rc = Relation();
  const ExecResult r = Execute(Algorithm::kSortMerge, rc, Params(0.05, rc));
  double max_clock = 0;
  for (double t : r.result.rproc_ms) max_clock = std::max(max_clock, t);
  EXPECT_DOUBLE_EQ(r.result.elapsed_ms, max_clock);
  EXPECT_EQ(r.result.rproc_ms.size(), 4u);
}

TEST(JoinBehaviorTest, ClockDecomposesIntoCategories) {
  const auto rc = Relation();
  const ExecResult r = Execute(Algorithm::kGrace, rc, Params(0.05, rc));
  for (const auto& s : r.result.rproc_stats) {
    EXPECT_NEAR(s.clock_ms, s.io_ms + s.cpu_ms + s.setup_ms + s.wait_ms,
                1e-6 * s.clock_ms);
    EXPECT_GT(s.io_ms, 0.0);
    EXPECT_GT(s.cpu_ms, 0.0);
    EXPECT_GT(s.setup_ms, 0.0);
  }
}

TEST(JoinBehaviorTest, SortMergeAndGraceBeatNestedLoopsWhenPaging) {
  // The core result of the paper at low memory.
  const auto rc = Relation(32768);
  const auto p = Params(0.05, rc);
  const double nl = Execute(Algorithm::kNestedLoops, rc, p).result.elapsed_ms;
  const double sm = Execute(Algorithm::kSortMerge, rc, p).result.elapsed_ms;
  const double gr = Execute(Algorithm::kGrace, rc, p).result.elapsed_ms;
  EXPECT_LT(sm, nl);
  EXPECT_LT(gr, sm);
}

TEST(JoinBehaviorTest, NestedLoopsCatchesUpWhenSCached) {
  const auto rc = Relation(32768);
  const auto p = Params(0.7, rc);
  const double nl = Execute(Algorithm::kNestedLoops, rc, p).result.elapsed_ms;
  const double gr = Execute(Algorithm::kGrace, rc, p).result.elapsed_ms;
  EXPECT_LT(nl, gr * 1.2);  // within striking distance or better
}

TEST(JoinBehaviorTest, MoreMemoryNeverSlowsAnExperimentMuch) {
  const auto rc = Relation();
  for (auto a :
       {Algorithm::kNestedLoops, Algorithm::kSortMerge, Algorithm::kGrace}) {
    const double lo = Execute(a, rc, Params(0.03, rc)).result.elapsed_ms;
    const double hi = Execute(a, rc, Params(0.5, rc)).result.elapsed_ms;
    EXPECT_LE(hi, lo * 1.05) << AlgorithmName(a);
  }
}

TEST(JoinBehaviorTest, FaultsDropWithMemory) {
  const auto rc = Relation();
  for (auto a :
       {Algorithm::kNestedLoops, Algorithm::kSortMerge, Algorithm::kGrace}) {
    const uint64_t lo = Execute(a, rc, Params(0.03, rc)).result.faults;
    const uint64_t hi = Execute(a, rc, Params(0.5, rc)).result.faults;
    EXPECT_LE(hi, lo) << AlgorithmName(a);
  }
}

TEST(JoinBehaviorTest, SetupChargesScaleWithD) {
  // Setup is serialized: each Rproc waits D * (its own setup).
  const auto rc = Relation();
  const ExecResult r = Execute(Algorithm::kNestedLoops, rc, Params(0.1, rc));
  EXPECT_GT(r.result.setup_ms, 0.0);
  const auto& mc = Machine();
  // Lower bound: D * (openMap(R) + openMap(S)) for one partition.
  const uint64_t part_pages =
      rc.r_objects / 4 * sizeof(rel::RObject) / mc.page_size;
  const double lower =
      4.0 * (mc.OpenMapMs(part_pages) + mc.OpenMapMs(part_pages));
  EXPECT_GE(r.result.rproc_stats[0].setup_ms, lower);
}

TEST(JoinBehaviorTest, GraceSequentialSReads) {
  // With a bucket's S-range resident, each S page faults exactly once:
  // total faults on S = P_S across the whole join (per partition, its
  // pages are read once). We measure via the result's fault counter
  // difference between a run with huge S memory and the observed one.
  const auto rc = Relation();
  auto p = Params(0.08, rc);
  p.m_sproc_bytes = 64ull << 20;  // S cache big enough: compulsory only
  const ExecResult r = Execute(Algorithm::kGrace, rc, p);
  // S pages total = |S| * s / B = 16384*128/4096 = 512. R-side sequential
  // faults add |R|r/B = 512 (R) + RS/RP traffic; just assert the join
  // stayed in the low-fault regime (no multiplicative re-reading of S).
  EXPECT_LT(r.result.faults, 4000u);
}

TEST(JoinBehaviorTest, OutputCountsSplitAcrossProcesses) {
  sim::SimEnv env(Machine());
  const auto rc = Relation();
  auto w = rel::BuildWorkload(&env, rc);
  ASSERT_TRUE(w.ok());
  auto r = RunSortMerge(&env, *w, Params(0.05, rc));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->output_count, rc.r_objects);
}

}  // namespace
}  // namespace mmjoin::join
