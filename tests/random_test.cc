#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <cmath>
#include <set>
#include <vector>

namespace mmjoin {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t n : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(n), n);
    }
  }
}

TEST(RngTest, UniformOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(RngTest, UniformIsRoughlyUnbiased) {
  Rng rng(13);
  const uint64_t n = 10;
  std::vector<uint64_t> counts(n, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.Uniform(n)];
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / double(n),
                5 * std::sqrt(trials / double(n)));
  }
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  ZipfGenerator gen(100, 0.0, 3);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[gen.Next()];
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  // Uniform: expect every bucket within a few sigma of 1000.
  EXPECT_GT(*mn, 800);
  EXPECT_LT(*mx, 1200);
}

TEST(ZipfTest, HigherThetaSkewsTowardLowRanks) {
  ZipfGenerator gen(1000, 0.9, 3);
  int low = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    if (gen.Next() < 10) ++low;
  }
  // Under uniform, rank<10 would get ~1% of mass; Zipf 0.9 concentrates
  // far more.
  EXPECT_GT(low, trials / 10);
}

TEST(ZipfTest, ValuesInRange) {
  for (double theta : {0.0, 0.3, 0.6, 0.99}) {
    ZipfGenerator gen(37, theta, 17);
    for (int i = 0; i < 2000; ++i) EXPECT_LT(gen.Next(), 37u);
  }
}

TEST(ZipfTest, Deterministic) {
  ZipfGenerator a(50, 0.5, 99), b(50, 0.5, 99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ShuffleTest, IsPermutation) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  Rng rng(21);
  Shuffle(&v, &rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ShuffleTest, ActuallyShuffles) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  Rng rng(22);
  Shuffle(&v, &rng);
  int fixed = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 15);  // expected ~1 fixed point
}

TEST(ShuffleTest, HandlesDegenerateSizes) {
  Rng rng(23);
  std::vector<int> empty;
  Shuffle(&empty, &rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  Shuffle(&one, &rng);
  EXPECT_EQ(one[0], 42);
}

}  // namespace
}  // namespace mmjoin
