// The urn occupancy model: exactness against closed forms and Monte Carlo.
#include "model/urn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/random.h"

namespace mmjoin::model {
namespace {

TEST(UrnTest, ZeroBallsAllEmpty) {
  const auto dist = OccupiedUrnDistribution(10, 0);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
  EXPECT_DOUBLE_EQ(ProbEmptyUrnsExactly(10, 0, 10), 1.0);
}

TEST(UrnTest, OneBallOneOccupied) {
  const auto dist = OccupiedUrnDistribution(10, 1);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
}

TEST(UrnTest, DistributionSumsToOne) {
  for (uint64_t m : {1ull, 2ull, 7ull, 64ull}) {
    for (uint64_t n : {0ull, 1ull, 5ull, 100ull, 1000ull}) {
      const auto dist = OccupiedUrnDistribution(m, n);
      const double sum = std::accumulate(dist.begin(), dist.end(), 0.0);
      EXPECT_NEAR(sum, 1.0, 1e-9) << "m=" << m << " n=" << n;
    }
  }
}

TEST(UrnTest, MatchesClosedFormForTwoUrns) {
  // With 2 urns and n balls: P[1 occupied] = 2 * (1/2)^n.
  for (uint64_t n : {1ull, 2ull, 5ull, 10ull}) {
    const auto dist = OccupiedUrnDistribution(2, n);
    EXPECT_NEAR(dist[1], 2.0 * std::pow(0.5, double(n)), 1e-12);
  }
}

TEST(UrnTest, ExpectedOccupiedMatchesFormula) {
  // E[occupied] = m(1 - (1 - 1/m)^n).
  const uint64_t m = 50, n = 120;
  const auto dist = OccupiedUrnDistribution(m, n);
  double expectation = 0;
  for (uint64_t k = 0; k <= m; ++k) {
    expectation += double(k) * dist[k];
  }
  const double formula =
      double(m) * (1.0 - std::pow(1.0 - 1.0 / double(m), double(n)));
  EXPECT_NEAR(expectation, formula, 1e-9);
}

TEST(UrnTest, CumulativeEmptyProbabilityEdges) {
  EXPECT_DOUBLE_EQ(ProbEmptyUrnsAtMost(10, 5, 10), 1.0);
  // At most -impossible- empties: with 5 balls at least 5 urns are empty.
  EXPECT_DOUBLE_EQ(ProbEmptyUrnsAtMost(10, 5, 2), 0.0);
}

TEST(UrnTest, CumulativeMonotoneInThreshold) {
  double prev = 0;
  for (uint64_t k = 0; k <= 20; ++k) {
    const double p = ProbEmptyUrnsAtMost(20, 30, k);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST(UrnTest, AgreesWithMonteCarlo) {
  const uint64_t m = 30, n = 60;
  Rng rng(99);
  const int trials = 20000;
  std::vector<int> empties_count(m + 1, 0);
  for (int t = 0; t < trials; ++t) {
    std::vector<bool> hit(m, false);
    for (uint64_t ball = 0; ball < n; ++ball) hit[rng.Uniform(m)] = true;
    int empty = 0;
    for (bool h : hit) {
      if (!h) ++empty;
    }
    ++empties_count[empty];
  }
  for (uint64_t k = 0; k <= m; ++k) {
    const double mc = empties_count[k] / double(trials);
    const double exact = ProbEmptyUrnsExactly(m, n, k);
    EXPECT_NEAR(mc, exact, 0.015) << "k=" << k;
  }
}

TEST(UrnTest, ExactlyOutOfRangeIsZero) {
  EXPECT_EQ(ProbEmptyUrnsExactly(5, 3, 6), 0.0);
}

}  // namespace
}  // namespace mmjoin::model
