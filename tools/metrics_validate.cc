// Validates `*.metrics.json` dumps with the observability layer's strict
// JSON parser (obs::JsonParse, RFC 8259 — the same parser the tests use to
// round-trip what the writers produce), optionally merging the validated
// documents into one artifact:
//
//   metrics_validate [--merge OUT.json]
//                    [--baseline BASE.json --tolerance PCT [--bench NAME]
//                     [--hist HISTOGRAM]]
//                    FILE...
//
// Every FILE must parse as a complete JSON document AND carry the bench
// dump shape (an object with a "bench" string and a "metrics" object);
// the first violation fails the run with a nonzero exit, which is what
// lets CI's bench-smoke job treat "the benches emitted garbage" as a
// build break. With --merge, the validated documents are embedded
// verbatim (they are known-good JSON) into
//
//   {"benches":[{"file":"<name>","doc":<document>}, ...]}
//
// With --baseline, each validated dump is additionally diffed against the
// dump of the SAME bench name inside the baseline merged artifact (the
// BENCH_ci.json shape above): the run fails if the current
// `join.elapsed_ms` histogram minimum — the fastest join the bench
// recorded, the most noise-robust wall-clock statistic it emits — exceeds
// the baseline's minimum by more than --tolerance percent. A bench absent
// from the baseline (or carrying no join.elapsed_ms) warns and passes, so
// adding a new bench never requires regenerating the baseline in the same
// change. --bench restricts the diff to one bench name (CI gates
// real_backend_join only; the figure benches are simulated-time).
// --hist picks a different histogram for the diff — the query-plan bench
// carries plan.elapsed_ms instead of join.elapsed_ms
// (scripts/bench_queries.sh passes --hist plan.elapsed_ms).
//
// Dumps carrying adaptive-planner telemetry get two extra trips against
// the baseline: the planner_regret geomean (planner.regret_geomean_x1000,
// same relative tolerance) and the mean absolute model error
// (join.model.error_pct mean, tolerance read as percentage POINTS — a
// closed loop whose predictions drift 25 points worse is broken even if
// the joins themselves got no slower).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// `hist` histogram minimum of one bench dump, or false if the dump
/// carries no such histogram.
bool ElapsedMin(const mmjoin::obs::JsonValue& dump, const std::string& hist,
                double* out) {
  const mmjoin::obs::JsonValue* metrics = dump.Find("metrics");
  if (!metrics || !metrics->is_object()) return false;
  const mmjoin::obs::JsonValue* hists = metrics->Find("histograms");
  if (!hists || !hists->is_object()) return false;
  const mmjoin::obs::JsonValue* h = hists->Find(hist);
  if (!h || !h->is_object()) return false;
  const mmjoin::obs::JsonValue* min = h->Find("min");
  if (!min || !min->is_number()) return false;
  *out = min->number;
  return true;
}

/// Counter value of one bench dump, or false if absent.
bool CounterValue(const mmjoin::obs::JsonValue& dump, const std::string& name,
                  double* out) {
  const mmjoin::obs::JsonValue* metrics = dump.Find("metrics");
  if (!metrics || !metrics->is_object()) return false;
  const mmjoin::obs::JsonValue* counters = metrics->Find("counters");
  if (!counters || !counters->is_object()) return false;
  const mmjoin::obs::JsonValue* c = counters->Find(name);
  if (!c || !c->is_number()) return false;
  *out = c->number;
  return true;
}

/// `hist` histogram mean of one bench dump, or false if absent.
bool HistMean(const mmjoin::obs::JsonValue& dump, const std::string& hist,
              double* out) {
  const mmjoin::obs::JsonValue* metrics = dump.Find("metrics");
  if (!metrics || !metrics->is_object()) return false;
  const mmjoin::obs::JsonValue* hists = metrics->Find("histograms");
  if (!hists || !hists->is_object()) return false;
  const mmjoin::obs::JsonValue* h = hists->Find(hist);
  if (!h || !h->is_object()) return false;
  const mmjoin::obs::JsonValue* mean = h->Find("mean");
  if (!mean || !mean->is_number()) return false;
  *out = mean->number;
  return true;
}

/// Finds the dump for `bench_name` inside a merged BENCH_ci.json artifact.
const mmjoin::obs::JsonValue* FindBaselineDump(
    const mmjoin::obs::JsonValue& baseline, const std::string& bench_name) {
  const mmjoin::obs::JsonValue* benches = baseline.Find("benches");
  if (!benches || !benches->is_array()) return nullptr;
  for (const mmjoin::obs::JsonValue& entry : benches->items) {
    const mmjoin::obs::JsonValue* doc = entry.Find("doc");
    if (!doc || !doc->is_object()) continue;
    const mmjoin::obs::JsonValue* name = doc->Find("bench");
    if (name && name->is_string() && name->str == bench_name) return doc;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string merge_path;
  std::string baseline_path;
  std::string bench_filter;
  std::string hist_name = "join.elapsed_ms";
  double tolerance_pct = 25.0;
  std::vector<std::string> files;
  for (int a = 1; a < argc; ++a) {
    auto need_value = [&](const char* flag) -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "metrics_validate: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++a];
    };
    if (std::strcmp(argv[a], "--merge") == 0) {
      merge_path = need_value("--merge");
    } else if (std::strcmp(argv[a], "--baseline") == 0) {
      baseline_path = need_value("--baseline");
    } else if (std::strcmp(argv[a], "--tolerance") == 0) {
      tolerance_pct = std::strtod(need_value("--tolerance"), nullptr);
    } else if (std::strcmp(argv[a], "--bench") == 0) {
      bench_filter = need_value("--bench");
    } else if (std::strcmp(argv[a], "--hist") == 0) {
      hist_name = need_value("--hist");
    } else {
      files.push_back(argv[a]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: metrics_validate [--merge OUT.json] "
                 "[--baseline BASE.json --tolerance PCT [--bench NAME] "
                 "[--hist HISTOGRAM]] FILE...\n");
    return 2;
  }

  mmjoin::obs::JsonValue baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!ReadFile(baseline_path, &text)) {
      std::fprintf(stderr, "metrics_validate: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    auto doc = mmjoin::obs::JsonParse(text);
    if (!doc.ok() || !doc->is_object()) {
      std::fprintf(stderr, "metrics_validate: baseline %s: %s\n",
                   baseline_path.c_str(),
                   doc.ok() ? "not an object"
                            : doc.status().ToString().c_str());
      return 1;
    }
    baseline = std::move(doc).value();
  }
  int regressions = 0;

  std::string merged = "{\"benches\":[";
  bool first = true;
  for (const std::string& path : files) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "metrics_validate: cannot read %s\n",
                   path.c_str());
      return 1;
    }
    auto doc = mmjoin::obs::JsonParse(text);
    if (!doc.ok()) {
      std::fprintf(stderr, "metrics_validate: %s: %s\n", path.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    const mmjoin::obs::JsonValue* bench = doc->Find("bench");
    const mmjoin::obs::JsonValue* metrics = doc->Find("metrics");
    if (!doc->is_object() || !bench || !bench->is_string() || !metrics ||
        !metrics->is_object()) {
      std::fprintf(stderr,
                   "metrics_validate: %s: not a bench metrics dump "
                   "(need object with \"bench\" string and \"metrics\" "
                   "object)\n",
                   path.c_str());
      return 1;
    }
    // Scatter column: staged-tuple traffic when the dump carries the
    // write-combining telemetry, "-" for benches that never scatter.
    const mmjoin::obs::JsonValue* counters = metrics->Find("counters");
    const mmjoin::obs::JsonValue* sc_flushes =
        counters && counters->is_object()
            ? counters->Find("join.scatter.flushes")
            : nullptr;
    const mmjoin::obs::JsonValue* sc_tuples =
        counters && counters->is_object()
            ? counters->Find("join.scatter.tuples")
            : nullptr;
    std::string scatter_col = "scatter=-";
    if (sc_flushes && sc_flushes->is_number() && sc_tuples &&
        sc_tuples->is_number()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "scatter=%.0f/%.0f",
                    sc_flushes->number, sc_tuples->number);
      scatter_col = buf;
    }
    // Queries column: plan runs / output rows when the dump carries the
    // operator-layer telemetry, "-" for benches that never ran a plan.
    const mmjoin::obs::JsonValue* plan_runs =
        counters && counters->is_object() ? counters->Find("plan.runs")
                                          : nullptr;
    const mmjoin::obs::JsonValue* plan_rows =
        counters && counters->is_object()
            ? counters->Find("plan.output_rows")
            : nullptr;
    std::string queries_col = "queries=-";
    if (plan_runs && plan_runs->is_number() && plan_rows &&
        plan_rows->is_number()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "queries=%.0f/%.0f", plan_runs->number,
                    plan_rows->number);
      queries_col = buf;
    }
    // Index column: B+-tree probe traffic (probes/matches) when the dump
    // carries index-join telemetry, "-" for benches that never probe.
    const mmjoin::obs::JsonValue* ix_probes =
        counters && counters->is_object()
            ? counters->Find("join.index.probes")
            : nullptr;
    const mmjoin::obs::JsonValue* ix_matches =
        counters && counters->is_object()
            ? counters->Find("join.index.matches")
            : nullptr;
    std::string index_col = "index=-";
    if (ix_probes && ix_probes->is_number() && ix_matches &&
        ix_matches->is_number()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "index=%.0f/%.0f", ix_probes->number,
                    ix_matches->number);
      index_col = buf;
    }
    // MPSM column: node bands / node-local runs when the dump carries the
    // NUMA-affine sort-merge telemetry, "-" for benches that never ran it
    // (join.mpsm.nodes >= 1 whenever the driver ran: 1 records the
    // single-node fallback, so presence alone is the signal).
    const mmjoin::obs::JsonValue* mp_nodes =
        counters && counters->is_object() ? counters->Find("join.mpsm.nodes")
                                          : nullptr;
    const mmjoin::obs::JsonValue* mp_runs =
        counters && counters->is_object() ? counters->Find("join.mpsm.runs")
                                          : nullptr;
    std::string mpsm_col = "mpsm=-";
    if (mp_nodes && mp_nodes->is_number() && mp_runs &&
        mp_runs->is_number()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "mpsm=%.0f/%.0f", mp_nodes->number,
                    mp_runs->number);
      mpsm_col = buf;
    }
    // Planner column: algorithm=auto decisions / mean absolute model error
    // when the dump carries the adaptive-planner telemetry, "-" for
    // benches that only ran explicit drivers.
    std::string planner_col = "planner=-";
    double auto_runs = 0, mean_err = 0;
    if (CounterValue(*doc, "join.planner.auto", &auto_runs) &&
        auto_runs > 0) {
      char buf[64];
      if (HistMean(*doc, "join.model.error_pct", &mean_err)) {
        std::snprintf(buf, sizeof(buf), "planner=%.0f/%.1f%%", auto_runs,
                      mean_err);
      } else {
        std::snprintf(buf, sizeof(buf), "planner=%.0f/-", auto_runs);
      }
      planner_col = buf;
    }
    std::printf("ok\t%s\tbench=%s\t%s\t%s\t%s\t%s\t%s\n", path.c_str(),
                bench->str.c_str(), scatter_col.c_str(), queries_col.c_str(),
                index_col.c_str(), mpsm_col.c_str(), planner_col.c_str());

    if (!baseline_path.empty() &&
        (bench_filter.empty() || bench_filter == bench->str)) {
      const mmjoin::obs::JsonValue* base_dump =
          FindBaselineDump(baseline, bench->str);
      double cur_ms = 0, base_ms = 0;
      if (base_dump == nullptr) {
        std::printf("diff\t%s\tno baseline entry — skipped\n",
                    bench->str.c_str());
      } else if (!ElapsedMin(*doc, hist_name, &cur_ms) ||
                 !ElapsedMin(*base_dump, hist_name, &base_ms) ||
                 base_ms <= 0) {
        std::printf("diff\t%s\tno %s to compare — skipped\n",
                    bench->str.c_str(), hist_name.c_str());
      } else {
        const double delta_pct = (cur_ms - base_ms) / base_ms * 100.0;
        const bool regressed = delta_pct > tolerance_pct;
        std::printf("diff\t%s\t%s min %.2f -> %.2f ms "
                    "(%+.1f%%, tolerance %.0f%%)\t%s\n",
                    bench->str.c_str(), hist_name.c_str(), base_ms, cur_ms,
                    delta_pct, tolerance_pct, regressed ? "REGRESSED" : "ok");
        if (regressed) ++regressions;
      }
      // Planner trips: when both sides carry the adaptive-planner
      // telemetry, a worse regret geomean (beyond the same relative
      // tolerance) or a mean absolute model error that grew by more than
      // `tolerance` percentage points is a regression — the closed loop
      // got worse at picking or at predicting.
      double cur_regret = 0, base_regret = 0;
      if (base_dump != nullptr &&
          CounterValue(*doc, "planner.regret_geomean_x1000", &cur_regret) &&
          CounterValue(*base_dump, "planner.regret_geomean_x1000",
                       &base_regret) &&
          base_regret > 0) {
        const double delta_pct =
            (cur_regret - base_regret) / base_regret * 100.0;
        const bool regressed = delta_pct > tolerance_pct;
        std::printf("diff\t%s\tregret geomean %.3fx -> %.3fx "
                    "(%+.1f%%, tolerance %.0f%%)\t%s\n",
                    bench->str.c_str(), base_regret / 1000.0,
                    cur_regret / 1000.0, delta_pct, tolerance_pct,
                    regressed ? "REGRESSED" : "ok");
        if (regressed) ++regressions;
      }
      double cur_err = 0, base_err = 0;
      if (base_dump != nullptr &&
          HistMean(*doc, "join.model.error_pct", &cur_err) &&
          HistMean(*base_dump, "join.model.error_pct", &base_err)) {
        const double delta_pts = cur_err - base_err;
        const bool regressed = delta_pts > tolerance_pct;
        std::printf("diff\t%s\tmodel |error| mean %.1f%% -> %.1f%% "
                    "(%+.1f pts, tolerance %.0f pts)\t%s\n",
                    bench->str.c_str(), base_err, cur_err, delta_pts,
                    tolerance_pct, regressed ? "REGRESSED" : "ok");
        if (regressed) ++regressions;
      }
    }

    if (!merge_path.empty()) {
      if (!first) merged += ',';
      first = false;
      merged += "{\"file\":\"" + mmjoin::obs::JsonEscape(path) +
                "\",\"doc\":" + text + "}";
    }
  }

  if (!merge_path.empty()) {
    merged += "]}";
    // The merge must itself survive the strict parser — embedding is only
    // verbatim-safe if the inputs really were complete documents.
    auto check = mmjoin::obs::JsonParse(merged);
    if (!check.ok()) {
      std::fprintf(stderr, "metrics_validate: merged artifact invalid: %s\n",
                   check.status().ToString().c_str());
      return 1;
    }
    std::FILE* f = std::fopen(merge_path.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "metrics_validate: cannot open %s\n",
                   merge_path.c_str());
      return 1;
    }
    std::fwrite(merged.data(), 1, merged.size(), f);
    std::fclose(f);
    std::printf("merged\t%s\t%zu files\n", merge_path.c_str(), files.size());
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "metrics_validate: %d bench(es) regressed beyond %.0f%%\n",
                 regressions, tolerance_pct);
    return 1;
  }
  return 0;
}
