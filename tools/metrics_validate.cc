// Validates `*.metrics.json` dumps with the observability layer's strict
// JSON parser (obs::JsonParse, RFC 8259 — the same parser the tests use to
// round-trip what the writers produce), optionally merging the validated
// documents into one artifact:
//
//   metrics_validate [--merge OUT.json] FILE...
//
// Every FILE must parse as a complete JSON document AND carry the bench
// dump shape (an object with a "bench" string and a "metrics" object);
// the first violation fails the run with a nonzero exit, which is what
// lets CI's bench-smoke job treat "the benches emitted garbage" as a
// build break. With --merge, the validated documents are embedded
// verbatim (they are known-good JSON) into
//
//   {"benches":[{"file":"<name>","doc":<document>}, ...]}
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string merge_path;
  std::vector<std::string> files;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--merge") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "metrics_validate: --merge needs a path\n");
        return 2;
      }
      merge_path = argv[++a];
    } else {
      files.push_back(argv[a]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: metrics_validate [--merge OUT.json] FILE...\n");
    return 2;
  }

  std::string merged = "{\"benches\":[";
  bool first = true;
  for (const std::string& path : files) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "metrics_validate: cannot read %s\n",
                   path.c_str());
      return 1;
    }
    auto doc = mmjoin::obs::JsonParse(text);
    if (!doc.ok()) {
      std::fprintf(stderr, "metrics_validate: %s: %s\n", path.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    const mmjoin::obs::JsonValue* bench = doc->Find("bench");
    const mmjoin::obs::JsonValue* metrics = doc->Find("metrics");
    if (!doc->is_object() || !bench || !bench->is_string() || !metrics ||
        !metrics->is_object()) {
      std::fprintf(stderr,
                   "metrics_validate: %s: not a bench metrics dump "
                   "(need object with \"bench\" string and \"metrics\" "
                   "object)\n",
                   path.c_str());
      return 1;
    }
    std::printf("ok\t%s\tbench=%s\n", path.c_str(), bench->str.c_str());
    if (!merge_path.empty()) {
      if (!first) merged += ',';
      first = false;
      merged += "{\"file\":\"" + mmjoin::obs::JsonEscape(path) +
                "\",\"doc\":" + text + "}";
    }
  }

  if (!merge_path.empty()) {
    merged += "]}";
    // The merge must itself survive the strict parser — embedding is only
    // verbatim-safe if the inputs really were complete documents.
    auto check = mmjoin::obs::JsonParse(merged);
    if (!check.ok()) {
      std::fprintf(stderr, "metrics_validate: merged artifact invalid: %s\n",
                   check.status().ToString().c_str());
      return 1;
    }
    std::FILE* f = std::fopen(merge_path.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "metrics_validate: cannot open %s\n",
                   merge_path.c_str());
      return 1;
    }
    std::fwrite(merged.data(), 1, merged.size(), f);
    std::fclose(f);
    std::printf("merged\t%s\t%zu files\n", merge_path.c_str(), files.size());
  }
  return 0;
}
