# Empty compiler generated dependencies file for abl3_replacement.
# This may be replaced when dependencies are built.
