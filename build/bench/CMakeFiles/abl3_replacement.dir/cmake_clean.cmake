file(REMOVE_RECURSE
  "CMakeFiles/abl3_replacement.dir/abl3_replacement.cc.o"
  "CMakeFiles/abl3_replacement.dir/abl3_replacement.cc.o.d"
  "abl3_replacement"
  "abl3_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
