# Empty dependencies file for fig5c_grace.
# This may be replaced when dependencies are built.
