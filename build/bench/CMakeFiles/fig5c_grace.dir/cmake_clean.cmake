file(REMOVE_RECURSE
  "CMakeFiles/fig5c_grace.dir/fig5c_grace.cc.o"
  "CMakeFiles/fig5c_grace.dir/fig5c_grace.cc.o.d"
  "fig5c_grace"
  "fig5c_grace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_grace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
