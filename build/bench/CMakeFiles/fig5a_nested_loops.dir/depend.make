# Empty dependencies file for fig5a_nested_loops.
# This may be replaced when dependencies are built.
