file(REMOVE_RECURSE
  "CMakeFiles/fig5a_nested_loops.dir/fig5a_nested_loops.cc.o"
  "CMakeFiles/fig5a_nested_loops.dir/fig5a_nested_loops.cc.o.d"
  "fig5a_nested_loops"
  "fig5a_nested_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_nested_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
