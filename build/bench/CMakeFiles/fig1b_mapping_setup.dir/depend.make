# Empty dependencies file for fig1b_mapping_setup.
# This may be replaced when dependencies are built.
