file(REMOVE_RECURSE
  "CMakeFiles/fig1b_mapping_setup.dir/fig1b_mapping_setup.cc.o"
  "CMakeFiles/fig1b_mapping_setup.dir/fig1b_mapping_setup.cc.o.d"
  "fig1b_mapping_setup"
  "fig1b_mapping_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_mapping_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
