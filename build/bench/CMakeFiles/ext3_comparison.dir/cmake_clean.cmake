file(REMOVE_RECURSE
  "CMakeFiles/ext3_comparison.dir/ext3_comparison.cc.o"
  "CMakeFiles/ext3_comparison.dir/ext3_comparison.cc.o.d"
  "ext3_comparison"
  "ext3_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext3_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
