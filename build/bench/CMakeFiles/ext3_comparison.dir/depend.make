# Empty dependencies file for ext3_comparison.
# This may be replaced when dependencies are built.
