# Empty compiler generated dependencies file for ext2_scaleup.
# This may be replaced when dependencies are built.
