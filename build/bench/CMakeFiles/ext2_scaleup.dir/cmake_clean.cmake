file(REMOVE_RECURSE
  "CMakeFiles/ext2_scaleup.dir/ext2_scaleup.cc.o"
  "CMakeFiles/ext2_scaleup.dir/ext2_scaleup.cc.o.d"
  "ext2_scaleup"
  "ext2_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext2_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
