file(REMOVE_RECURSE
  "CMakeFiles/ext4_skew.dir/ext4_skew.cc.o"
  "CMakeFiles/ext4_skew.dir/ext4_skew.cc.o.d"
  "ext4_skew"
  "ext4_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext4_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
