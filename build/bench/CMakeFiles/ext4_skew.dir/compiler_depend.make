# Empty compiler generated dependencies file for ext4_skew.
# This may be replaced when dependencies are built.
