file(REMOVE_RECURSE
  "CMakeFiles/fig1a_disk_transfer.dir/fig1a_disk_transfer.cc.o"
  "CMakeFiles/fig1a_disk_transfer.dir/fig1a_disk_transfer.cc.o.d"
  "fig1a_disk_transfer"
  "fig1a_disk_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_disk_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
