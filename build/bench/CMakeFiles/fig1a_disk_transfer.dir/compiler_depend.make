# Empty compiler generated dependencies file for fig1a_disk_transfer.
# This may be replaced when dependencies are built.
