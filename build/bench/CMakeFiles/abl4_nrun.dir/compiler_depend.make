# Empty compiler generated dependencies file for abl4_nrun.
# This may be replaced when dependencies are built.
