file(REMOVE_RECURSE
  "CMakeFiles/abl4_nrun.dir/abl4_nrun.cc.o"
  "CMakeFiles/abl4_nrun.dir/abl4_nrun.cc.o.d"
  "abl4_nrun"
  "abl4_nrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl4_nrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
