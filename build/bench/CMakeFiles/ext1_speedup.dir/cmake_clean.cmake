file(REMOVE_RECURSE
  "CMakeFiles/ext1_speedup.dir/ext1_speedup.cc.o"
  "CMakeFiles/ext1_speedup.dir/ext1_speedup.cc.o.d"
  "ext1_speedup"
  "ext1_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext1_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
