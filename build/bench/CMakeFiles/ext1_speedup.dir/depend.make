# Empty dependencies file for ext1_speedup.
# This may be replaced when dependencies are built.
