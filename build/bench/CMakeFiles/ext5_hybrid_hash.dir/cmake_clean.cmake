file(REMOVE_RECURSE
  "CMakeFiles/ext5_hybrid_hash.dir/ext5_hybrid_hash.cc.o"
  "CMakeFiles/ext5_hybrid_hash.dir/ext5_hybrid_hash.cc.o.d"
  "ext5_hybrid_hash"
  "ext5_hybrid_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext5_hybrid_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
