# Empty dependencies file for ext5_hybrid_hash.
# This may be replaced when dependencies are built.
