# Empty compiler generated dependencies file for fig5b_sort_merge.
# This may be replaced when dependencies are built.
