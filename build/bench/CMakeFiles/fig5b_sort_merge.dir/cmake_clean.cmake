file(REMOVE_RECURSE
  "CMakeFiles/fig5b_sort_merge.dir/fig5b_sort_merge.cc.o"
  "CMakeFiles/fig5b_sort_merge.dir/fig5b_sort_merge.cc.o.d"
  "fig5b_sort_merge"
  "fig5b_sort_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_sort_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
