file(REMOVE_RECURSE
  "CMakeFiles/abl1_phase_sync.dir/abl1_phase_sync.cc.o"
  "CMakeFiles/abl1_phase_sync.dir/abl1_phase_sync.cc.o.d"
  "abl1_phase_sync"
  "abl1_phase_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_phase_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
