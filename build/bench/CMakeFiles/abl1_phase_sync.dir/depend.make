# Empty dependencies file for abl1_phase_sync.
# This may be replaced when dependencies are built.
