file(REMOVE_RECURSE
  "CMakeFiles/abl2_gbuffer.dir/abl2_gbuffer.cc.o"
  "CMakeFiles/abl2_gbuffer.dir/abl2_gbuffer.cc.o.d"
  "abl2_gbuffer"
  "abl2_gbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_gbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
