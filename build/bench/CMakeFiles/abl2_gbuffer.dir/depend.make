# Empty dependencies file for abl2_gbuffer.
# This may be replaced when dependencies are built.
