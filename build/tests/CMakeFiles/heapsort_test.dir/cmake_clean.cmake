file(REMOVE_RECURSE
  "CMakeFiles/heapsort_test.dir/heapsort_test.cc.o"
  "CMakeFiles/heapsort_test.dir/heapsort_test.cc.o.d"
  "heapsort_test"
  "heapsort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapsort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
