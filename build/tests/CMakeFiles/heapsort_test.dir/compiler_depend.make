# Empty compiler generated dependencies file for heapsort_test.
# This may be replaced when dependencies are built.
