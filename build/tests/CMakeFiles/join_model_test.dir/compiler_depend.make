# Empty compiler generated dependencies file for join_model_test.
# This may be replaced when dependencies are built.
