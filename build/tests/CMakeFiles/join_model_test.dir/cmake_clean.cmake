file(REMOVE_RECURSE
  "CMakeFiles/join_model_test.dir/join_model_test.cc.o"
  "CMakeFiles/join_model_test.dir/join_model_test.cc.o.d"
  "join_model_test"
  "join_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
