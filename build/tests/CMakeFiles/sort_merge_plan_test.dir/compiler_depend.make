# Empty compiler generated dependencies file for sort_merge_plan_test.
# This may be replaced when dependencies are built.
