# Empty dependencies file for mmap_join_test.
# This may be replaced when dependencies are built.
