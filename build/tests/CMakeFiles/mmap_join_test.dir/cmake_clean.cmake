file(REMOVE_RECURSE
  "CMakeFiles/mmap_join_test.dir/mmap_join_test.cc.o"
  "CMakeFiles/mmap_join_test.dir/mmap_join_test.cc.o.d"
  "mmap_join_test"
  "mmap_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmap_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
