# Empty dependencies file for join_behavior_test.
# This may be replaced when dependencies are built.
