file(REMOVE_RECURSE
  "CMakeFiles/join_behavior_test.dir/join_behavior_test.cc.o"
  "CMakeFiles/join_behavior_test.dir/join_behavior_test.cc.o.d"
  "join_behavior_test"
  "join_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
