file(REMOVE_RECURSE
  "CMakeFiles/segment_manager_test.dir/segment_manager_test.cc.o"
  "CMakeFiles/segment_manager_test.dir/segment_manager_test.cc.o.d"
  "segment_manager_test"
  "segment_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
