# Empty compiler generated dependencies file for segment_manager_test.
# This may be replaced when dependencies are built.
