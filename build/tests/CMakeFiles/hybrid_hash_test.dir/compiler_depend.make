# Empty compiler generated dependencies file for hybrid_hash_test.
# This may be replaced when dependencies are built.
