file(REMOVE_RECURSE
  "CMakeFiles/hybrid_hash_test.dir/hybrid_hash_test.cc.o"
  "CMakeFiles/hybrid_hash_test.dir/hybrid_hash_test.cc.o.d"
  "hybrid_hash_test"
  "hybrid_hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
