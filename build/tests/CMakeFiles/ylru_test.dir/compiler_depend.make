# Empty compiler generated dependencies file for ylru_test.
# This may be replaced when dependencies are built.
