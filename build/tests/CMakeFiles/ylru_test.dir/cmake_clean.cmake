file(REMOVE_RECURSE
  "CMakeFiles/ylru_test.dir/ylru_test.cc.o"
  "CMakeFiles/ylru_test.dir/ylru_test.cc.o.d"
  "ylru_test"
  "ylru_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ylru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
