# Empty dependencies file for join_passes_test.
# This may be replaced when dependencies are built.
