file(REMOVE_RECURSE
  "CMakeFiles/join_passes_test.dir/join_passes_test.cc.o"
  "CMakeFiles/join_passes_test.dir/join_passes_test.cc.o.d"
  "join_passes_test"
  "join_passes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_passes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
