file(REMOVE_RECURSE
  "CMakeFiles/policy_join_integration_test.dir/policy_join_integration_test.cc.o"
  "CMakeFiles/policy_join_integration_test.dir/policy_join_integration_test.cc.o.d"
  "policy_join_integration_test"
  "policy_join_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_join_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
