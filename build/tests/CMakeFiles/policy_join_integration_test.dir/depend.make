# Empty dependencies file for policy_join_integration_test.
# This may be replaced when dependencies are built.
