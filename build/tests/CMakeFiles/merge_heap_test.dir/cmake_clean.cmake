file(REMOVE_RECURSE
  "CMakeFiles/merge_heap_test.dir/merge_heap_test.cc.o"
  "CMakeFiles/merge_heap_test.dir/merge_heap_test.cc.o.d"
  "merge_heap_test"
  "merge_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
