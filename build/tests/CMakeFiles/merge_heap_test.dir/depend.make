# Empty dependencies file for merge_heap_test.
# This may be replaced when dependencies are built.
