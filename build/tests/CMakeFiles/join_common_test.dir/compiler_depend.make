# Empty compiler generated dependencies file for join_common_test.
# This may be replaced when dependencies are built.
