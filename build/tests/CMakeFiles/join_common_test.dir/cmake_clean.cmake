file(REMOVE_RECURSE
  "CMakeFiles/join_common_test.dir/join_common_test.cc.o"
  "CMakeFiles/join_common_test.dir/join_common_test.cc.o.d"
  "join_common_test"
  "join_common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
