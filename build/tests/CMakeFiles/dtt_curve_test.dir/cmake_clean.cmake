file(REMOVE_RECURSE
  "CMakeFiles/dtt_curve_test.dir/dtt_curve_test.cc.o"
  "CMakeFiles/dtt_curve_test.dir/dtt_curve_test.cc.o.d"
  "dtt_curve_test"
  "dtt_curve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtt_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
