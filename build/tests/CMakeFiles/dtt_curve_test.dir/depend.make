# Empty dependencies file for dtt_curve_test.
# This may be replaced when dependencies are built.
