# Empty compiler generated dependencies file for urn_test.
# This may be replaced when dependencies are built.
