file(REMOVE_RECURSE
  "CMakeFiles/urn_test.dir/urn_test.cc.o"
  "CMakeFiles/urn_test.dir/urn_test.cc.o.d"
  "urn_test"
  "urn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
