# Empty compiler generated dependencies file for band_measure_test.
# This may be replaced when dependencies are built.
