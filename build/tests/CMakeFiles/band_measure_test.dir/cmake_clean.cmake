file(REMOVE_RECURSE
  "CMakeFiles/band_measure_test.dir/band_measure_test.cc.o"
  "CMakeFiles/band_measure_test.dir/band_measure_test.cc.o.d"
  "band_measure_test"
  "band_measure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/band_measure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
