file(REMOVE_RECURSE
  "CMakeFiles/grace_plan_test.dir/grace_plan_test.cc.o"
  "CMakeFiles/grace_plan_test.dir/grace_plan_test.cc.o.d"
  "grace_plan_test"
  "grace_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grace_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
