# Empty dependencies file for grace_plan_test.
# This may be replaced when dependencies are built.
