# Empty compiler generated dependencies file for real_mmap_join.
# This may be replaced when dependencies are built.
