file(REMOVE_RECURSE
  "CMakeFiles/real_mmap_join.dir/real_mmap_join.cpp.o"
  "CMakeFiles/real_mmap_join.dir/real_mmap_join.cpp.o.d"
  "real_mmap_join"
  "real_mmap_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_mmap_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
