file(REMOVE_RECURSE
  "CMakeFiles/query_planner.dir/query_planner.cpp.o"
  "CMakeFiles/query_planner.dir/query_planner.cpp.o.d"
  "query_planner"
  "query_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
