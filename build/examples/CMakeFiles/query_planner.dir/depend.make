# Empty dependencies file for query_planner.
# This may be replaced when dependencies are built.
