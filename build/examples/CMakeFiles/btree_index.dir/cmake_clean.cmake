file(REMOVE_RECURSE
  "CMakeFiles/btree_index.dir/btree_index.cpp.o"
  "CMakeFiles/btree_index.dir/btree_index.cpp.o.d"
  "btree_index"
  "btree_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
