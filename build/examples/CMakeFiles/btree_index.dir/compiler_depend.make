# Empty compiler generated dependencies file for btree_index.
# This may be replaced when dependencies are built.
