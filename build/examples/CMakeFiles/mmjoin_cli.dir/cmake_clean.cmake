file(REMOVE_RECURSE
  "CMakeFiles/mmjoin_cli.dir/mmjoin_cli.cpp.o"
  "CMakeFiles/mmjoin_cli.dir/mmjoin_cli.cpp.o.d"
  "mmjoin_cli"
  "mmjoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmjoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
