# Empty dependencies file for mmjoin_cli.
# This may be replaced when dependencies are built.
