# Empty compiler generated dependencies file for mmjoin.
# This may be replaced when dependencies are built.
