
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disk/band_measure.cc" "src/CMakeFiles/mmjoin.dir/disk/band_measure.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/disk/band_measure.cc.o.d"
  "/root/repo/src/disk/disk_array.cc" "src/CMakeFiles/mmjoin.dir/disk/disk_array.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/disk/disk_array.cc.o.d"
  "/root/repo/src/disk/disk_model.cc" "src/CMakeFiles/mmjoin.dir/disk/disk_model.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/disk/disk_model.cc.o.d"
  "/root/repo/src/heap/heapsort.cc" "src/CMakeFiles/mmjoin.dir/heap/heapsort.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/heap/heapsort.cc.o.d"
  "/root/repo/src/heap/merge_heap.cc" "src/CMakeFiles/mmjoin.dir/heap/merge_heap.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/heap/merge_heap.cc.o.d"
  "/root/repo/src/join/grace.cc" "src/CMakeFiles/mmjoin.dir/join/grace.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/join/grace.cc.o.d"
  "/root/repo/src/join/hybrid_hash.cc" "src/CMakeFiles/mmjoin.dir/join/hybrid_hash.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/join/hybrid_hash.cc.o.d"
  "/root/repo/src/join/join_common.cc" "src/CMakeFiles/mmjoin.dir/join/join_common.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/join/join_common.cc.o.d"
  "/root/repo/src/join/nested_loops.cc" "src/CMakeFiles/mmjoin.dir/join/nested_loops.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/join/nested_loops.cc.o.d"
  "/root/repo/src/join/oracle.cc" "src/CMakeFiles/mmjoin.dir/join/oracle.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/join/oracle.cc.o.d"
  "/root/repo/src/join/sort_merge.cc" "src/CMakeFiles/mmjoin.dir/join/sort_merge.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/join/sort_merge.cc.o.d"
  "/root/repo/src/mmap/btree.cc" "src/CMakeFiles/mmjoin.dir/mmap/btree.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/mmap/btree.cc.o.d"
  "/root/repo/src/mmap/mm_relation.cc" "src/CMakeFiles/mmjoin.dir/mmap/mm_relation.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/mmap/mm_relation.cc.o.d"
  "/root/repo/src/mmap/mmap_join.cc" "src/CMakeFiles/mmjoin.dir/mmap/mmap_join.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/mmap/mmap_join.cc.o.d"
  "/root/repo/src/mmap/segment.cc" "src/CMakeFiles/mmjoin.dir/mmap/segment.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/mmap/segment.cc.o.d"
  "/root/repo/src/mmap/segment_manager.cc" "src/CMakeFiles/mmjoin.dir/mmap/segment_manager.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/mmap/segment_manager.cc.o.d"
  "/root/repo/src/model/dtt_curve.cc" "src/CMakeFiles/mmjoin.dir/model/dtt_curve.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/model/dtt_curve.cc.o.d"
  "/root/repo/src/model/grace_model.cc" "src/CMakeFiles/mmjoin.dir/model/grace_model.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/model/grace_model.cc.o.d"
  "/root/repo/src/model/nested_loops_model.cc" "src/CMakeFiles/mmjoin.dir/model/nested_loops_model.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/model/nested_loops_model.cc.o.d"
  "/root/repo/src/model/sort_merge_model.cc" "src/CMakeFiles/mmjoin.dir/model/sort_merge_model.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/model/sort_merge_model.cc.o.d"
  "/root/repo/src/model/urn.cc" "src/CMakeFiles/mmjoin.dir/model/urn.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/model/urn.cc.o.d"
  "/root/repo/src/model/ylru.cc" "src/CMakeFiles/mmjoin.dir/model/ylru.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/model/ylru.cc.o.d"
  "/root/repo/src/rel/generator.cc" "src/CMakeFiles/mmjoin.dir/rel/generator.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/rel/generator.cc.o.d"
  "/root/repo/src/sim/machine_config.cc" "src/CMakeFiles/mmjoin.dir/sim/machine_config.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/sim/machine_config.cc.o.d"
  "/root/repo/src/sim/shared_buffer.cc" "src/CMakeFiles/mmjoin.dir/sim/shared_buffer.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/sim/shared_buffer.cc.o.d"
  "/root/repo/src/sim/sim_env.cc" "src/CMakeFiles/mmjoin.dir/sim/sim_env.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/sim/sim_env.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/mmjoin.dir/util/random.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/util/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/mmjoin.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/mmjoin.dir/util/status.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/util/status.cc.o.d"
  "/root/repo/src/vm/page_cache.cc" "src/CMakeFiles/mmjoin.dir/vm/page_cache.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/vm/page_cache.cc.o.d"
  "/root/repo/src/vm/replacement.cc" "src/CMakeFiles/mmjoin.dir/vm/replacement.cc.o" "gcc" "src/CMakeFiles/mmjoin.dir/vm/replacement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
