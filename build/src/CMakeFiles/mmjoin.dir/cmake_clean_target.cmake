file(REMOVE_RECURSE
  "libmmjoin.a"
)
