// mmjoin: parallel pointer-based join algorithms in memory-mapped
// environments — umbrella header for the public API.
//
// Reproduction of Buhr, Goel, Nishimura & Ragde, ICDE 1996.
#ifndef MMJOIN_MMJOIN_H_
#define MMJOIN_MMJOIN_H_

#include "disk/band_measure.h"     // Fig. 1(a) measurement harness
#include "disk/disk_array.h"       // simulated multi-disk substrate
#include "exec/backend.h"          // execution-backend concept + RP layout
#include "exec/join_drivers.h"     // the four drivers, written once
#include "exec/kernels.h"          // batched prefetch dereference kernels
#include "exec/op/operators.h"     // push-based plan operators
#include "exec/op/plan.h"          // plan specs, executor, built-in plans
#include "exec/op/stages.h"        // reusable driver pass stages
#include "exec/real_backend.h"     // real-mmap backend (threads, wall time)
#include "heap/heapsort.h"         // Floyd build + heapsort (Munro)
#include "heap/merge_heap.h"       // delete-insert k-way merge heap
#include "join/grace.h"            // parallel pointer-based Grace join
#include "join/hybrid_hash.h"      // pointer-based hybrid-hash (EXT-5)
#include "join/index_nl.h"         // index nested-loops over B+-tree (EXT-8)
#include "join/join_common.h"      // parameters / results / execution core
#include "join/mpsm.h"             // NUMA-affine massively-parallel SM (EXT-9)
#include "join/nested_loops.h"     // parallel pointer-based nested loops
#include "join/oracle.h"           // reference join for verification
#include "join/sort_merge.h"       // parallel pointer-based sort-merge
#include "mmap/segment.h"          // real mmap single-level store
#include "mmap/btree.h"        // persistent B+-tree on the store
#include "mmap/mm_relation.h"     // relations in real mapped segments
#include "mmap/mmap_join.h"        // real parallel mmap joins
#include "mmap/segment_manager.h"  // named-segment catalogue
#include "model/join_model.h"      // analytical cost models
#include "model/urn.h"             // Johnson-Kotz urn occupancy
#include "model/wall_model.h"      // wall-clock cost model (planner)
#include "model/ylru.h"            // Mackert-Lohman LRU model
#include "opt/adaptive.h"          // shared planner state + persistence
#include "opt/calibration.h"       // machine calibration probes + EWMA
#include "opt/planner.h"           // adaptive driver/knob selection
#include "obs/json.h"              // minimal JSON parse/escape helpers
#include "obs/metrics.h"           // named counters/histograms + JSON dump
#include "obs/trace.h"             // Chrome trace-event recorder
#include "rel/generator.h"         // workload generation
#include "rel/relation.h"          // relation layout and pointers
#include "service/admission.h"     // bounded in-flight + memory budget
#include "service/catalog.h"       // resident named-relation store
#include "service/client.h"        // blocking protocol client
#include "service/protocol.h"      // mmjoind wire protocol
#include "service/query.h"         // one query end to end
#include "service/server.h"        // the mmjoind daemon core
#include "sim/machine_config.h"    // environment parameters
#include "sim/sim_env.h"           // simulated single-level store
#include "vm/page_cache.h"         // paged resident-set simulation

#endif  // MMJOIN_MMJOIN_H_
